// Package fhecli implements the `fhe` command: a file-based workflow over
// the functional CKKS library. Keys live in a directory (the secret key
// stays client-side; evaluation keys ship compressed), ciphertexts are
// single files in the library's wire format, and every operation is a
// subcommand — so the whole encrypt → compute → decrypt loop can be
// driven from a shell and tested end to end.
package fhecli

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"repro/internal/ckks"
	"repro/internal/fherr"
	"repro/internal/obs"
	"repro/internal/obs/ledger"
	"repro/internal/prng"
)

// recorder, when non-nil (armed by a leading -debug-addr, -stats or
// -chaos flag), is attached to every evaluator the subcommands build, so
// /metrics, the -stats summary table and the FLIGHT.json fault dump all
// see the ckks.* spans and counters of the operation in flight.
var recorder *obs.Recorder

// flightPath is where the dump-on-fault hook (and the chaos suite)
// writes the flight-recorder window; set by the leading -flight-out
// flag.
var flightPath = "FLIGHT.json"

// workerCount is the evaluator parallelism selected by the leading
// -workers flag: 1 is serial, ≤ 0 selects GOMAXPROCS. Results are
// bit-identical regardless of the setting.
var workerCount = 1

// Run dispatches the subcommand. A leading -debug-addr ADDR serves
// /debug/pprof, /metrics and /healthz over HTTP for the duration of the
// command (drained with a bounded timeout on exit); a leading -workers N
// parallelizes the evaluator across N goroutines; a leading -stats
// prints an end-of-run telemetry table (latency percentiles per op,
// counters, memory gauges); a leading -flight-out FILE sets where the
// flight recorder dumps its window when a fault is classified; a leading
// -chaos runs the fault-injection smoke suite instead of a subcommand.
// Output goes to w; errors are returned, typed so the caller can map
// them to exit codes with fherr.ExitCode.
func Run(args []string, w io.Writer) error {
	usageErr := fherr.Errorf(fherr.ErrUsage,
		"usage: fhe [-debug-addr ADDR] [-workers N] [-stats] [-flight-out FILE] [-chaos [-chaos-out FILE]] {keygen|encrypt|add|mul|rotate|sum|decrypt|info} [flags]")
	if len(args) == 0 {
		return usageErr
	}
	global := flag.NewFlagSet("fhe", flag.ContinueOnError)
	debugAddr := global.String("debug-addr", "", "serve /debug/pprof, /metrics and /healthz on this address while the command runs")
	workers := global.Int("workers", 1, "evaluator goroutines (0 = all cores); results are bit-identical at any setting")
	stats := global.Bool("stats", false, "print an end-of-run telemetry summary (op latency percentiles, counters, memory gauges)")
	flightOut := global.String("flight-out", "FLIGHT.json", "where the flight recorder dumps the last spans and counters when a fault is classified")
	chaos := global.Bool("chaos", false, "run the fault-injection smoke suite and exit")
	chaosOut := global.String("chaos-out", "CHAOS.json", "where -chaos writes its machine-readable report")
	global.SetOutput(io.Discard)
	if err := global.Parse(args); err != nil {
		return usageErr
	}
	workerCount = *workers
	flightPath = *flightOut
	args = global.Args()
	if !*chaos && len(args) == 0 {
		return usageErr
	}
	recorder = nil
	if *debugAddr != "" || *stats || *chaos {
		recorder = obs.NewRecorder()
	}
	// Dump-on-fault: any panic classified at an API boundary flushes the
	// flight-recorder window before the error propagates. Nil-recorder
	// safe, so registration is unconditional for the command's duration.
	fherr.SetPanicHook(func(err error) {
		_ = recorder.DumpFlight(flightPath, "panic: "+err.Error())
	})
	defer fherr.SetPanicHook(nil)
	if *debugAddr != "" {
		dbg, err := obs.NewDebugServer(*debugAddr, recorder)
		if err != nil {
			return err
		}
		defer dbg.Shutdown(2 * time.Second)
		fmt.Fprintf(w, "debug server: http://%s/debug/pprof/ and http://%s/metrics\n", dbg.Addr, dbg.Addr)
	}
	err := func() error {
		if *chaos {
			return ChaosSmoke(w, *chaosOut)
		}
		return dispatch(args, w)
	}()
	if *stats {
		printStats(w, recorder)
	}
	return err
}

func dispatch(args []string, w io.Writer) error {
	switch args[0] {
	case "keygen":
		return keygen(args[1:], w)
	case "encrypt":
		return encrypt(args[1:], w)
	case "add":
		return binop(args[1:], w, "add")
	case "mul":
		return binop(args[1:], w, "mul")
	case "rotate":
		return rotate(args[1:], w)
	case "sum":
		return innerSum(args[1:], w)
	case "decrypt":
		return decrypt(args[1:], w)
	case "info":
		return info(args[1:], w)
	default:
		return fherr.Errorf(fherr.ErrUsage, "unknown subcommand %q", args[0])
	}
}

// printStats renders the -stats end-of-run summary: one row per
// latency histogram (count and percentiles in microseconds), then every
// counter and gauge. Memory gauges are refreshed immediately before the
// snapshot so the table reflects the run's final heap state.
func printStats(w io.Writer, r *obs.Recorder) {
	if r == nil {
		return
	}
	obs.PublishMemStats(r)
	s := r.Snapshot()
	fmt.Fprintf(w, "\n== telemetry (%d spans retained", len(s.Spans))
	if d := s.Counters[obs.DroppedSpansCounter]; d > 0 {
		fmt.Fprintf(w, ", %d dropped", d)
	}
	fmt.Fprint(w, ") ==\n")
	if len(s.Hists) > 0 {
		fmt.Fprintf(w, "%-28s %8s %10s %10s %10s %10s\n", "op", "count", "p50 us", "p95 us", "p99 us", "max us")
		names := make([]string, 0, len(s.Hists))
		for k := range s.Hists {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, name := range names {
			h := s.Hists[name]
			fmt.Fprintf(w, "%-28s %8d %10.1f %10.1f %10.1f %10.1f\n", name, h.Count,
				h.Quantile(0.50)/1e3, h.Quantile(0.95)/1e3, h.Quantile(0.99)/1e3, float64(h.Max)/1e3)
		}
	}
	printLedger(w, s)
	if len(s.Counters) > 0 {
		fmt.Fprintf(w, "%-40s %15s\n", "counter", "value")
		names := make([]string, 0, len(s.Counters))
		for k := range s.Counters {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(w, "%-40s %15d\n", name, s.Counters[name])
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintf(w, "%-40s %15s\n", "gauge", "value")
		names := make([]string, 0, len(s.Gauges))
		for k := range s.Gauges {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(w, "%-40s %15.0f\n", name, s.Gauges[name])
		}
	}
}

// printLedger renders the per-op cost-ledger section of -stats: spans
// that carry a model prediction are grouped by op name, with predicted
// bytes (analytic model) next to the measured kernel-counter deltas.
func printLedger(w io.Writer, s obs.Snapshot) {
	type acc struct {
		count      int
		pred, meas uint64
	}
	byOp := map[string]*acc{}
	for _, sp := range s.Spans {
		pred, okP := sp.Attrs["pred.bytes"]
		meas, okM := sp.MeasuredBytes()
		if !okP || !okM || pred <= 0 {
			continue
		}
		a := byOp[sp.Name]
		if a == nil {
			a = &acc{}
			byOp[sp.Name] = a
		}
		a.count++
		a.pred += uint64(pred)
		a.meas += meas
	}
	if len(byOp) == 0 {
		return
	}
	names := make([]string, 0, len(byOp))
	for k := range byOp {
		names = append(names, k)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-28s %8s %14s %14s %8s\n", "ledger op", "count", "pred bytes", "meas bytes", "delta")
	for _, name := range names {
		a := byOp[name]
		delta := 100 * (float64(a.meas) - float64(a.pred)) / float64(a.pred)
		fmt.Fprintf(w, "%-28s %8d %14d %14d %+7.1f%%\n", name, a.count, a.pred, a.meas, delta)
	}
}

// paramsFor rebuilds the parameter set from the sizes stored at keygen.
func paramsFor(logN, levels int) (*ckks.Parameters, error) {
	logQ := []int{50}
	for i := 0; i < levels; i++ {
		logQ = append(logQ, 40)
	}
	return ckks.NewParameters(ckks.ParametersLiteral{
		LogN: logN, LogQ: logQ, LogP: []int{50, 50}, LogScale: 40,
	})
}

// keyDir is the on-disk layout of a key directory.
type keyDir struct {
	dir    string
	params *ckks.Parameters
	logN   int
	levels int
}

func openKeyDir(dir string) (*keyDir, error) {
	meta, err := os.ReadFile(filepath.Join(dir, "params"))
	if err != nil {
		return nil, fmt.Errorf("reading key directory: %w (run `fhe keygen` first)", err)
	}
	var logN, levels int
	if _, err := fmt.Sscanf(string(meta), "logn=%d levels=%d", &logN, &levels); err != nil {
		return nil, fmt.Errorf("corrupt params file: %w", err)
	}
	params, err := paramsFor(logN, levels)
	if err != nil {
		return nil, err
	}
	return &keyDir{dir: dir, params: params, logN: logN, levels: levels}, nil
}

// secretKey regenerates the secret key from the stored seed. Storing the
// 32-byte seed instead of the expanded key keeps the client state tiny
// and is the same determinism that powers key compression.
func (k *keyDir) secretKey() (*ckks.SecretKey, error) {
	raw, err := os.ReadFile(filepath.Join(k.dir, "secret.seed"))
	if err != nil {
		return nil, err
	}
	if len(raw) != prng.SeedSize {
		return nil, fmt.Errorf("secret seed has %d bytes, want %d", len(raw), prng.SeedSize)
	}
	var seed [prng.SeedSize]byte
	copy(seed[:], raw)
	kg := ckks.NewKeyGenerator(k.params, prng.NewSource(seed))
	return kg.GenSecretKey(), nil
}

// evaluator loads the compressed evaluation keys.
func (k *keyDir) evaluator(needRotation int) (*ckks.Evaluator, error) {
	keys := &ckks.EvaluationKeySet{Galois: map[uint64]*ckks.GaloisKey{}}
	rlkFile, err := os.Open(filepath.Join(k.dir, "rlk.bin"))
	if err != nil {
		return nil, err
	}
	defer rlkFile.Close()
	swk, _, err := ckks.ReadSwitchingKey(rlkFile)
	if err != nil {
		return nil, fmt.Errorf("reading relinearization key: %w", err)
	}
	keys.Rlk = &ckks.RelinearizationKey{SwitchingKey: *swk}

	if needRotation != 0 {
		g := k.params.RingQ().GaloisElement(needRotation)
		name := fmt.Sprintf("rot%d.bin", needRotation)
		f, err := os.Open(filepath.Join(k.dir, name))
		if err != nil {
			return nil, fmt.Errorf("no key for rotation %d (re-run keygen with -rots including it): %w", needRotation, err)
		}
		defer f.Close()
		gswk, _, err := ckks.ReadSwitchingKey(f)
		if err != nil {
			return nil, err
		}
		keys.Galois[g] = &ckks.GaloisKey{GaloisEl: g, SwitchingKey: *gswk}
	}
	ev := ckks.NewEvaluator(k.params, keys, ckks.WithWorkers(workerCount))
	attachTelemetry(ev, k.params)
	return ev, nil
}

// attachTelemetry wires the shared recorder and, when the parameter set
// maps onto the analytic model, the cost ledger — so -stats can report
// predicted-vs-measured traffic per op. Parameter sets outside the
// model's domain (no dnum reproduces the special-limb count) simply run
// without predictions.
func attachTelemetry(ev *ckks.Evaluator, params *ckks.Parameters) {
	ev.SetRecorder(recorder)
	if m, err := ledger.ForParameters(params); err == nil {
		ev.SetCostModel(m)
	}
}

func keygen(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("keygen", flag.ContinueOnError)
	dir := fs.String("dir", "keys", "key directory to create")
	logN := fs.Int("logn", 12, "ring degree exponent (10-14)")
	levels := fs.Int("levels", 5, "multiplicative levels (1-12)")
	rots := fs.String("rots", "1,2,3,4", "comma-separated rotation steps to key")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *logN < 10 || *logN > 14 {
		return fmt.Errorf("-logn %d outside [10,14]", *logN)
	}
	if *levels < 1 || *levels > 12 {
		return fmt.Errorf("-levels %d outside [1,12]", *levels)
	}
	params, err := paramsFor(*logN, *levels)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*dir, 0o700); err != nil {
		return err
	}

	// Secret key from a fresh stored seed.
	_, seed := prng.NewRandomSource()
	if err := os.WriteFile(filepath.Join(*dir, "secret.seed"), seed[:], 0o600); err != nil {
		return err
	}
	kg := ckks.NewKeyGenerator(params, prng.NewSource(seed))
	sk := kg.GenSecretKey()

	// Compressed evaluation keys.
	rlk := kg.GenRelinearizationKey(sk, true)
	if err := writeKeyFile(filepath.Join(*dir, "rlk.bin"), &rlk.SwitchingKey); err != nil {
		return err
	}
	var steps []int
	for _, tok := range splitCSV(*rots) {
		v, err := strconv.Atoi(tok)
		if err != nil || v == 0 {
			return fmt.Errorf("bad rotation step %q", tok)
		}
		steps = append(steps, v)
	}
	for _, step := range steps {
		g := params.RingQ().GaloisElement(step)
		gk := kg.GenGaloisKey(g, sk, true)
		if err := writeKeyFile(filepath.Join(*dir, fmt.Sprintf("rot%d.bin", step)), &gk.SwitchingKey); err != nil {
			return err
		}
	}

	if err := os.WriteFile(filepath.Join(*dir, "params"),
		[]byte(fmt.Sprintf("logn=%d levels=%d\n", *logN, *levels)), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "keys written to %s (N=2^%d, %d levels, rotations %v, compressed eval keys)\n",
		*dir, *logN, *levels, steps)
	return nil
}

func splitCSV(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func writeKeyFile(path string, k *ckks.SwitchingKey) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = k.WriteTo(f)
	return err
}

func encrypt(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("encrypt", flag.ContinueOnError)
	dir := fs.String("dir", "keys", "key directory")
	out := fs.String("out", "ct.bin", "output ciphertext file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fherr.Errorf(fherr.ErrUsage, "encrypt: no values given")
	}
	k, err := openKeyDir(*dir)
	if err != nil {
		return err
	}
	vals := make([]complex128, fs.NArg())
	for i, tok := range fs.Args() {
		v, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return fmt.Errorf("bad value %q", tok)
		}
		vals[i] = complex(v, 0)
	}
	sk, err := k.secretKey()
	if err != nil {
		return err
	}
	src, _ := prng.NewRandomSource()
	enc := ckks.NewEncoder(k.params)
	ct := ckks.NewSecretKeyEncryptor(k.params, sk, src).Encrypt(enc.Encode(vals))
	if err := writeCt(*out, ct); err != nil {
		return err
	}
	fmt.Fprintf(w, "encrypted %d values to %s (level %d)\n", len(vals), *out, ct.Level)
	return nil
}

func readCt(path string) (*ckks.Ciphertext, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var ct ckks.Ciphertext
	if _, err := ct.ReadFrom(f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &ct, nil
}

func writeCt(path string, ct *ckks.Ciphertext) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = ct.WriteTo(f)
	return err
}

func binop(args []string, w io.Writer, op string) error {
	fs := flag.NewFlagSet(op, flag.ContinueOnError)
	dir := fs.String("dir", "keys", "key directory")
	out := fs.String("out", op+".bin", "output ciphertext file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fherr.Errorf(fherr.ErrUsage, "%s: need exactly two ciphertext files", op)
	}
	k, err := openKeyDir(*dir)
	if err != nil {
		return err
	}
	a, err := readCt(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := readCt(fs.Arg(1))
	if err != nil {
		return err
	}
	ev, err := k.evaluator(0)
	if err != nil {
		return err
	}
	// The checked API rejects malformed or mismatched ciphertext files
	// with a typed error instead of crashing the process.
	var res *ckks.Ciphertext
	switch op {
	case "add":
		res, err = ev.AddE(a, b)
	case "mul":
		res, err = ev.MulE(a, b)
	}
	if err != nil {
		return err
	}
	if err := writeCt(*out, res); err != nil {
		return err
	}
	fmt.Fprintf(w, "%s -> %s (level %d)\n", op, *out, res.Level)
	return nil
}

func rotate(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("rotate", flag.ContinueOnError)
	dir := fs.String("dir", "keys", "key directory")
	out := fs.String("out", "rot.bin", "output ciphertext file")
	by := fs.Int("by", 1, "rotation step")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fherr.Errorf(fherr.ErrUsage, "rotate: need one ciphertext file")
	}
	k, err := openKeyDir(*dir)
	if err != nil {
		return err
	}
	ct, err := readCt(fs.Arg(0))
	if err != nil {
		return err
	}
	ev, err := k.evaluator(*by)
	if err != nil {
		return err
	}
	res, err := ev.RotateE(ct, *by)
	if err != nil {
		return err
	}
	if err := writeCt(*out, res); err != nil {
		return err
	}
	fmt.Fprintf(w, "rotate by %d -> %s (level %d)\n", *by, *out, res.Level)
	return nil
}

func decrypt(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("decrypt", flag.ContinueOnError)
	dir := fs.String("dir", "keys", "key directory")
	slots := fs.Int("slots", 8, "how many slots to print")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fherr.Errorf(fherr.ErrUsage, "decrypt: need one ciphertext file")
	}
	k, err := openKeyDir(*dir)
	if err != nil {
		return err
	}
	ct, err := readCt(fs.Arg(0))
	if err != nil {
		return err
	}
	sk, err := k.secretKey()
	if err != nil {
		return err
	}
	enc := ckks.NewEncoder(k.params)
	vals := enc.Decode(ckks.NewDecryptor(k.params, sk).DecryptToPlaintext(ct))
	n := min(*slots, len(vals))
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "slot %3d: %+.6f\n", i, real(vals[i]))
	}
	return nil
}

func info(args []string, w io.Writer) error {
	if len(args) != 1 {
		return fherr.Errorf(fherr.ErrUsage, "info: need one ciphertext file")
	}
	ct, err := readCt(args[0])
	if err != nil {
		return err
	}
	st, err := os.Stat(args[0])
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s: level %d, %d limbs x %d coefficients, scale 2^%.1f, %d bytes\n",
		args[0], ct.Level, ct.C0.Level()+1, len(ct.C0.Coeffs[0]), math.Log2(ct.Scale), st.Size())
	return nil
}

// innerSum folds the first -n slots with the rotate-and-sum ladder; the
// key directory must hold rotation keys for the powers of two below n.
func innerSum(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("sum", flag.ContinueOnError)
	dir := fs.String("dir", "keys", "key directory")
	out := fs.String("out", "sum.bin", "output ciphertext file")
	n := fs.Int("n", 4, "slot count to fold (power of two)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fherr.Errorf(fherr.ErrUsage, "sum: need one ciphertext file")
	}
	if *n < 1 || *n&(*n-1) != 0 {
		return fherr.Errorf(fherr.ErrUsage, "sum: -n %d is not a power of two", *n)
	}
	k, err := openKeyDir(*dir)
	if err != nil {
		return err
	}
	ct, err := readCt(fs.Arg(0))
	if err != nil {
		return err
	}
	keys := &ckks.EvaluationKeySet{Galois: map[uint64]*ckks.GaloisKey{}}
	for _, step := range ckks.InnerSumRotations(*n) {
		f, err := os.Open(filepath.Join(k.dir, fmt.Sprintf("rot%d.bin", step)))
		if err != nil {
			return fmt.Errorf("sum over %d slots needs rotation key %d: %w", *n, step, err)
		}
		swk, _, err := ckks.ReadSwitchingKey(f)
		f.Close()
		if err != nil {
			return err
		}
		g := k.params.RingQ().GaloisElement(step)
		keys.Galois[g] = &ckks.GaloisKey{GaloisEl: g, SwitchingKey: *swk}
	}
	ev := ckks.NewEvaluator(k.params, keys, ckks.WithWorkers(workerCount))
	attachTelemetry(ev, k.params)
	res, err := ev.InnerSumE(ct, *n)
	if err != nil {
		return err
	}
	if err := writeCt(*out, res); err != nil {
		return err
	}
	fmt.Fprintf(w, "inner sum over %d slots -> %s (slot 0 holds the total)\n", *n, *out)
	return nil
}
