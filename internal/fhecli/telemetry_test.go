package fhecli

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestChaosWritesFlightDump runs the chaos suite with -flight-out and
// asserts the FLIGHT.json artifact exists, parses, and holds the spans
// leading up to the injected faults.
func TestChaosWritesFlightDump(t *testing.T) {
	tmp := t.TempDir()
	chaosOut := filepath.Join(tmp, "CHAOS.json")
	flightOut := filepath.Join(tmp, "FLIGHT.json")
	out, err := run(t, "-chaos", "-chaos-out", chaosOut, "-flight-out", flightOut)
	if err != nil {
		t.Fatalf("chaos suite failed: %v\n%s", err, out)
	}
	raw, err := os.ReadFile(flightOut)
	if err != nil {
		t.Fatalf("chaos run left no flight dump: %v", err)
	}
	var d obs.FlightDump
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("FLIGHT.json does not parse: %v", err)
	}
	if !strings.HasPrefix(d.Reason, "chaos:") {
		t.Errorf("flight reason = %q, want chaos summary", d.Reason)
	}
	if len(d.Spans) == 0 {
		t.Fatal("flight dump holds no spans")
	}
	// The suite drives MulE/AddE/RotateE through the checked facade; the
	// window must contain their spans.
	var sawCkks bool
	for _, sp := range d.Spans {
		if strings.HasPrefix(sp.Name, "ckks.") {
			sawCkks = true
			break
		}
	}
	if !sawCkks {
		t.Errorf("no ckks.* spans in flight window (got %d spans)", len(d.Spans))
	}
	if len(d.Hists) == 0 {
		t.Error("no latency histograms in flight dump")
	}
}

// TestStatsFlagPrintsSummary checks the -stats end-of-run table: op
// percentiles, counters and memory gauges all render.
func TestStatsFlagPrintsSummary(t *testing.T) {
	dir := setupKeys(t)
	tmp := filepath.Dir(dir)
	ctA := filepath.Join(tmp, "a.bin")
	ctB := filepath.Join(tmp, "b.bin")
	if _, err := run(t, "encrypt", "-dir", dir, "-out", ctA, "1", "2"); err != nil {
		t.Fatal(err)
	}
	if _, err := run(t, "encrypt", "-dir", dir, "-out", ctB, "3", "4"); err != nil {
		t.Fatal(err)
	}
	out, err := run(t, "-stats", "mul", "-dir", dir, "-out", filepath.Join(tmp, "p.bin"), ctA, ctB)
	if err != nil {
		t.Fatalf("mul with -stats: %v\n%s", err, out)
	}
	for _, want := range []string{
		"== telemetry",
		"ckks.MulE", // checked-facade span histogram
		"p95 us",
		"ring.ntt",             // kernel counter
		"ring.ntt.bytes",       // traffic counter
		"mem.heap_alloc_bytes", // memory gauge
		// Key-vault telemetry: eval keys ship compressed, so the mul's
		// relinearization demand-materializes digits through the vault.
		"ckks.keyvault.expansions",
		"ckks.keyvault.misses",
		"ckks.keyvault.resident_bytes",
		"ckks.keyvault.budget_bytes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-stats output missing %q:\n%s", want, out)
		}
	}
}

// TestStatsOffByDefault pins that a plain run prints no telemetry table
// (the recorder stays nil, so instrumentation costs one nil check).
func TestStatsOffByDefault(t *testing.T) {
	dir := setupKeys(t)
	tmp := filepath.Dir(dir)
	ct := filepath.Join(tmp, "a.bin")
	if _, err := run(t, "encrypt", "-dir", dir, "-out", ct, "1"); err != nil {
		t.Fatal(err)
	}
	out, err := run(t, "info", ct)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "telemetry") {
		t.Fatalf("telemetry table printed without -stats:\n%s", out)
	}
}
