package fhecli

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// run executes a subcommand line against a scratch buffer.
func run(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := Run(args, &buf)
	return buf.String(), err
}

// setupKeys creates a small key directory in a temp dir.
func setupKeys(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "keys")
	out, err := run(t, "keygen", "-dir", dir, "-logn", "10", "-levels", "3", "-rots", "1,3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "keys written") {
		t.Fatalf("unexpected keygen output: %q", out)
	}
	return dir
}

func TestEndToEndWorkflow(t *testing.T) {
	dir := setupKeys(t)
	tmp := filepath.Dir(dir)
	ctA := filepath.Join(tmp, "a.bin")
	ctB := filepath.Join(tmp, "b.bin")

	if _, err := run(t, "encrypt", "-dir", dir, "-out", ctA, "1.5", "2.0", "-3.25"); err != nil {
		t.Fatal(err)
	}
	if _, err := run(t, "encrypt", "-dir", dir, "-out", ctB, "0.5", "1.0", "2.0"); err != nil {
		t.Fatal(err)
	}

	// add
	sum := filepath.Join(tmp, "sum.bin")
	if _, err := run(t, "add", "-dir", dir, "-out", sum, ctA, ctB); err != nil {
		t.Fatal(err)
	}
	out, err := run(t, "decrypt", "-dir", dir, "-slots", "3", sum)
	if err != nil {
		t.Fatal(err)
	}
	assertSlots(t, out, []float64{2.0, 3.0, -1.25})

	// mul
	prod := filepath.Join(tmp, "prod.bin")
	if _, err := run(t, "mul", "-dir", dir, "-out", prod, ctA, ctB); err != nil {
		t.Fatal(err)
	}
	out, err = run(t, "decrypt", "-dir", dir, "-slots", "3", prod)
	if err != nil {
		t.Fatal(err)
	}
	assertSlots(t, out, []float64{0.75, 2.0, -6.5})

	// rotate
	rot := filepath.Join(tmp, "rot.bin")
	if _, err := run(t, "rotate", "-dir", dir, "-by", "1", "-out", rot, ctA); err != nil {
		t.Fatal(err)
	}
	out, err = run(t, "decrypt", "-dir", dir, "-slots", "2", rot)
	if err != nil {
		t.Fatal(err)
	}
	assertSlots(t, out, []float64{2.0, -3.25})

	// info
	out, err = run(t, "info", prod)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "level 2") {
		t.Errorf("info output missing level: %q", out)
	}
}

// assertSlots parses "slot i: v" lines and compares with tolerance.
func assertSlots(t *testing.T, out string, want []float64) {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < len(want) {
		t.Fatalf("only %d output lines: %q", len(lines), out)
	}
	for i, w := range want {
		var idx int
		var v float64
		if _, err := fmt.Sscanf(lines[i], "slot %d: %f", &idx, &v); err != nil {
			t.Fatalf("unparsable line %q: %v", lines[i], err)
		}
		if d := v - w; d > 1e-3 || d < -1e-3 {
			t.Errorf("slot %d: got %v, want %v", i, v, w)
		}
	}
}

func TestErrors(t *testing.T) {
	dir := setupKeys(t)
	cases := [][]string{
		{},
		{"bogus"},
		{"encrypt", "-dir", dir},                 // no values
		{"encrypt", "-dir", dir, "notanumber"},   // bad value
		{"encrypt", "-dir", "/nonexistent", "1"}, // missing keys
		{"add", "-dir", dir, "only-one.bin"},     // wrong arity
		{"decrypt", "-dir", dir, "/nonexistent/ct.bin"},       // missing ct
		{"keygen", "-dir", dir, "-logn", "20"},                // bad logn
		{"keygen", "-dir", dir, "-levels", "99"},              // bad levels
		{"keygen", "-dir", dir, "-rots", "0"},                 // bad rotation
		{"rotate", "-dir", dir, "-by", "7", "/nonexistent/x"}, // missing file
	}
	for _, args := range cases {
		if _, err := run(t, args...); err == nil {
			t.Errorf("expected error for %v", args)
		}
	}
}

func TestRotationWithoutKeyFails(t *testing.T) {
	dir := setupKeys(t) // keyed rotations: 1, 3
	tmp := filepath.Dir(dir)
	ct := filepath.Join(tmp, "x.bin")
	if _, err := run(t, "encrypt", "-dir", dir, "-out", ct, "1", "2"); err != nil {
		t.Fatal(err)
	}
	if _, err := run(t, "rotate", "-dir", dir, "-by", "5", "-out", filepath.Join(tmp, "y.bin"), ct); err == nil {
		t.Error("rotation without a key should fail cleanly")
	}
}

func TestSplitCSV(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []string
	}{
		{"1,2,3", []string{"1", "2", "3"}},
		{"", nil},
		{"7", []string{"7"}},
		{"1,,2", []string{"1", "2"}},
	} {
		got := splitCSV(tc.in)
		if len(got) != len(tc.want) {
			t.Errorf("splitCSV(%q) = %v", tc.in, got)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("splitCSV(%q) = %v", tc.in, got)
			}
		}
	}
}

func TestInnerSumSubcommand(t *testing.T) {
	dir := setupKeys(t) // rotations 1, 3 are keyed; sum -n 2 needs only 1
	tmp := filepath.Dir(dir)
	ct := filepath.Join(tmp, "v.bin")
	if _, err := run(t, "encrypt", "-dir", dir, "-out", ct, "1", "2", "3", "4"); err != nil {
		t.Fatal(err)
	}
	sum := filepath.Join(tmp, "s.bin")
	if _, err := run(t, "sum", "-dir", dir, "-n", "2", "-out", sum, ct); err != nil {
		t.Fatal(err)
	}
	out, err := run(t, "decrypt", "-dir", dir, "-slots", "1", sum)
	if err != nil {
		t.Fatal(err)
	}
	assertSlots(t, out, []float64{3}) // 1 + 2

	// Folding 4 slots needs rotation 2, which is not keyed: clean error.
	if _, err := run(t, "sum", "-dir", dir, "-n", "4", "-out", sum, ct); err == nil {
		t.Error("sum without the needed rotation key should fail")
	}
	// Non-power-of-two width rejected.
	if _, err := run(t, "sum", "-dir", dir, "-n", "3", "-out", sum, ct); err == nil {
		t.Error("sum with n=3 should fail")
	}
}

// TestWorkersFlagBitIdentical checks that the leading -workers flag is
// accepted and that a parallel evaluation writes the exact bytes the
// serial one does (encryption is randomized, so only the deterministic
// evaluate step is compared).
func TestWorkersFlagBitIdentical(t *testing.T) {
	dir := setupKeys(t)
	tmp := filepath.Dir(dir)
	ctA := filepath.Join(tmp, "a.bin")
	if _, err := run(t, "encrypt", "-dir", dir, "-out", ctA, "1.5", "2.0"); err != nil {
		t.Fatal(err)
	}
	serial := filepath.Join(tmp, "serial.bin")
	if _, err := run(t, "mul", "-dir", dir, "-out", serial, ctA, ctA); err != nil {
		t.Fatal(err)
	}
	par := filepath.Join(tmp, "par.bin")
	if _, err := run(t, "-workers", "2", "mul", "-dir", dir, "-out", par, ctA, ctA); err != nil {
		t.Fatal(err)
	}
	defer func() { workerCount = 1 }()
	a, err := os.ReadFile(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(par)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("-workers 2 product differs from the serial product")
	}
}
