package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/calib"
)

// driftReportJSON is the machine-readable form of `simfhe drift`.
type driftReportJSON struct {
	Meta   runMeta            `json:"meta"`
	Pass   bool               `json:"pass"`
	Report *calib.DriftReport `json:"report"`
}

// driftCmd runs the online drift harness: a real workload (Mult probes
// plus one full bootstrap) with the hierarchical span recorder, the
// memtrace tracer and the cost ledger attached, then reports per-op-kind
// predicted-vs-measured DRAM traffic aggregated over the top-level op
// spans. Where `simfhe validate` measures hand-picked op windows, drift
// measures the ops exactly as the evaluator issued them.
func driftCmd(args []string) {
	fs := flag.NewFlagSet("drift", flag.ExitOnError)
	def := calib.DefaultDriftConfig()
	logN := fs.Int("logn", def.LogN, "ring degree exponent")
	cacheLimbs := fs.Int("cache-limbs", def.CacheLimbs, "simulated on-chip capacity, in limbs of 8*N bytes")
	line := fs.Int("line", def.LineBytes, "cache line size in bytes")
	ways := fs.Int("ways", def.Ways, "cache set associativity")
	tol := fs.Float64("tol", def.Tolerance, "tolerance for the calibrated kinds: Mult, Rescale (0.20 = ±20%)")
	wide := fs.Float64("wide-tol", def.WideTolerance, "tolerance for every other attributed kind")
	probes := fs.Int("mult-probes", def.MultProbes, "explicit top-level Mult ops prepended to the bootstrap workload")
	out := fs.String("out", "", "write the drift report as JSON (- for stdout)")
	jsonOnly := fs.Bool("json", false, "write the JSON report to stdout instead of the table")
	strict := fs.Bool("strict", false, "exit nonzero when any gated kind diverges past its tolerance")
	fs.Parse(args)

	cfg := calib.DriftConfig{
		LogN: *logN, CacheLimbs: *cacheLimbs, LineBytes: *line, Ways: *ways,
		Tolerance: *tol, WideTolerance: *wide,
		MultProbes: *probes,
	}
	rep, err := calib.RunDrift(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "drift:", err)
		os.Exit(1)
	}
	pass := rep.Gate()
	payload := driftReportJSON{
		Meta: collectMeta(fmt.Sprintf("logN=%d cacheLimbs=%d multProbes=%d", cfg.LogN, cfg.CacheLimbs, cfg.MultProbes)),
		Pass: pass, Report: rep,
	}
	if *jsonOnly {
		writeBenchJSON(payload, "-")
	} else {
		rep.WriteTable(os.Stdout)
		if pass {
			fmt.Println("\ndrift: PASS (all gated kinds within tolerance)")
		} else {
			fmt.Println("\ndrift: FAIL (see kinds above; deviations are discussed in docs/OBSERVABILITY.md)")
		}
	}
	if *out != "" {
		writeBenchJSON(payload, *out)
	}
	if *strict && !pass {
		os.Exit(1)
	}
}
