package main

import (
	"os"
	"os/exec"
	"runtime"
	"strings"
)

// runMeta stamps machine-readable reports with enough provenance to
// compare runs across commits and machines: which code produced the
// numbers, on what CPU, with how much parallelism. Every field is
// best-effort — a missing git binary or a non-Linux /proc simply leaves
// the field empty rather than failing the run.
type runMeta struct {
	GitSHA     string `json:"git_sha,omitempty"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	CPUModel   string `json:"cpu_model,omitempty"`
	Params     string `json:"params,omitempty"`
}

// collectMeta gathers the runtime environment; params describes the
// workload configuration of the run (free-form, report-specific).
func collectMeta(params string) runMeta {
	return runMeta{
		GitSHA:     gitSHA(),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		CPUModel:   cpuModel(),
		Params:     params,
	}
}

// gitSHA returns the short commit hash of the working tree, or "" when
// git (or a repository) is unavailable.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// cpuModel reads the first "model name" line of /proc/cpuinfo (Linux);
// other platforms report "".
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}
