package main

// The extend suite measures the basis-extension kernel rewrite in
// isolation: the tiled lazy Extend against the retained scalar oracle at
// the basis-pair shapes key switching exercises, plus the full ModUp /
// ModDown pipelines whose steady state must be allocation-free. Results
// land in BENCH_extend.json so the acceptance numbers (≥ 2× over the
// reference kernel, 0 allocs/op) are recorded alongside the code.

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/mathutil"
	"repro/internal/prng"
	"repro/internal/ring"
	"repro/internal/rns"
)

// extendKernelResult is one basis-pair shape, lazy vs reference.
type extendKernelResult struct {
	Name        string  `json:"name"`
	InLimbs     int     `json:"in_limbs"`
	OutLimbs    int     `json:"out_limbs"`
	NsLazy      int64   `json:"ns_lazy"`
	NsReference int64   `json:"ns_reference"`
	Speedup     float64 `json:"speedup"`
	AllocsLazy  int64   `json:"allocs_per_op_lazy"`
}

// extendPipelineResult is a full ModUp/ModDown steady-state measurement.
type extendPipelineResult struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
}

type extendReport struct {
	Meta       runMeta                `json:"meta"`
	GoMaxProcs int                    `json:"gomaxprocs"`
	NumCPU     int                    `json:"num_cpu"`
	LogN       int                    `json:"logN"`
	Tile       int                    `json:"extend_tile"`
	Note       string                 `json:"note"`
	Kernels    []extendKernelResult   `json:"kernels"`
	Pipelines  []extendPipelineResult `json:"pipelines"`
	TableKeyNs float64                `json:"table_key_ns"`
}

// benchExtendBases mirrors the layout of the package benchmarks: an
// 18-limb Q chain and a 3-limb P basis of 40-bit NTT primes at N = 2^13.
func benchExtendBases() (q, p []uint64) {
	primes, err := mathutil.GenerateNTTPrimes(40, 13, 21)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	return primes[:18], primes[18:]
}

func benchExtendInput(src *prng.Source, tab *rns.ExtTable, n int) (in, out [][]uint64) {
	in = make([][]uint64, len(tab.In))
	for i, q := range tab.In {
		in[i] = make([]uint64, n)
		src.UniformSlice(in[i], q)
	}
	out = make([][]uint64, len(tab.Out))
	for j := range out {
		out[j] = make([]uint64, n)
	}
	return in, out
}

func benchExtendSuite(outPath string) {
	const logN = 13
	const n = 1 << logN
	qMod, pMod := benchExtendBases()
	var seed [prng.SeedSize]byte
	copy(seed[:], "simfhe bench deterministic seed")
	src := prng.NewSource(seed)

	report := extendReport{
		Meta:       collectMeta(fmt.Sprintf("suite=extend logN=%d tile=%d", logN, rns.ExtendTile)),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		LogN:       logN,
		Tile:       rns.ExtendTile,
		Note: "lazy = tiled 128-bit-accumulating Extend; reference = retained " +
			"scalar oracle (bit-identical outputs, enforced by tests)",
	}

	shapes := []struct {
		name    string
		in, out []uint64
	}{
		{"modup_digit_3to18", qMod[:3], append(append([]uint64(nil), qMod[3:]...), pMod...)},
		{"moddown_3to18", pMod, qMod},
		{"wide_18to3", qMod, pMod},
	}
	for _, sh := range shapes {
		tab := rns.NewExtTable(sh.in, sh.out)
		in, out := benchExtendInput(src, tab, n)
		lazy := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tab.Extend(in, out)
			}
		})
		ref := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tab.ExtendReference(in, out)
			}
		})
		report.Kernels = append(report.Kernels, extendKernelResult{
			Name:        sh.name,
			InLimbs:     len(sh.in),
			OutLimbs:    len(sh.out),
			NsLazy:      lazy.NsPerOp(),
			NsReference: ref.NsPerOp(),
			Speedup:     float64(ref.NsPerOp()) / float64(lazy.NsPerOp()),
			AllocsLazy:  lazy.AllocsPerOp(),
		})
		fmt.Fprintf(os.Stderr, "bench: extend %s lazy=%d ns/op reference=%d ns/op (%.2fx)\n",
			sh.name, lazy.NsPerOp(), ref.NsPerOp(), float64(ref.NsPerOp())/float64(lazy.NsPerOp()))
	}

	// Full pipelines at workers=1: iNTT → extend → NTT. The steady state
	// must report 0 allocs/op — pooled scratch, pooled views, cached tables.
	ringQ, err := ring.NewRing(n, qMod)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	ringP, err := ring.NewRing(n, pMod)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	conv := rns.NewConverter(ringQ, ringP)
	levelQ := ringQ.MaxLevel()
	aQ := ringQ.NewPoly()
	ringQ.SampleUniform(src, aQ)
	aQ.IsNTT = true
	up := conv.NewPolyQP(levelQ)
	conv.ModUpDigit(levelQ, 0, 3, aQ, up, 1) // warm tables and pools
	modUp := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			conv.ModUpDigit(levelQ, 0, 3, aQ, up, 1)
		}
	})
	down := ringQ.NewPoly()
	conv.ModDown(levelQ, up, down, 1)
	modDown := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			conv.ModDown(levelQ, up, down, 1)
		}
	})
	for _, pr := range []struct {
		name string
		r    testing.BenchmarkResult
	}{{"modup_digit", modUp}, {"moddown", modDown}} {
		report.Pipelines = append(report.Pipelines, extendPipelineResult{
			Name:        pr.name,
			NsPerOp:     pr.r.NsPerOp(),
			AllocsPerOp: pr.r.AllocsPerOp(),
			BytesPerOp:  pr.r.AllocedBytesPerOp(),
		})
		fmt.Fprintf(os.Stderr, "bench: %s %d ns/op %d allocs/op\n",
			pr.name, pr.r.NsPerOp(), pr.r.AllocsPerOp())
	}

	// Table-cache hit path: the structural key must keep lookups in the
	// tens of nanoseconds (the old fmt.Sprint key cost ~1 µs per hit).
	keyBench := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if conv.Table(pMod, qMod) == nil {
				b.Fatal("nil table")
			}
		}
	})
	report.TableKeyNs = float64(keyBench.T.Nanoseconds()) / float64(keyBench.N)
	fmt.Fprintf(os.Stderr, "bench: table_key %.1f ns/op\n", report.TableKeyNs)

	writeBenchJSON(report, outPath)
}
