package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/calib"
	"repro/internal/obs"
)

// validateReport is the machine-readable form of `simfhe validate`.
type validateReport struct {
	Meta   runMeta       `json:"meta"`
	Pass   bool          `json:"pass"`
	Report *calib.Report `json:"report"`
}

// validateCmd runs the functional evaluator side-by-side with the
// analytic model: it traces real homomorphic ops through the cache
// simulator and compares measured DRAM traffic against the model's
// prediction at the same parameters (internal/calib).
func validateCmd(args []string) {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	def := calib.DefaultConfig()
	logN := fs.Int("logn", def.LogN, "ring degree exponent")
	limbs := fs.Int("limbs", def.Limbs, "ciphertext limb count (model L)")
	dnum := fs.Int("dnum", def.Dnum, "key-switching digit count")
	cacheLimbs := fs.Int("cache-limbs", def.CacheLimbs, "simulated on-chip capacity, in limbs of 8*N bytes")
	line := fs.Int("line", def.LineBytes, "cache line size in bytes")
	ways := fs.Int("ways", def.Ways, "cache set associativity")
	tol := fs.Float64("tol", def.Tolerance, "relative tolerance for the gating rows (0.20 = ±20%)")
	diags := fs.Int("diags", def.Diags, "plaintext matrix diagonal count")
	rotations := fs.Int("rotations", def.Rotations, "hoisted-rotation fan-out")
	boot := fs.Bool("boot", false, "also trace one full bootstrap, reported per phase (informational)")
	out := fs.String("out", "", "write the calibration report as JSON (- for stdout)")
	metricsOut := fs.String("metrics-out", "", "write measured/modeled byte counters as Prometheus text")
	csvOut := fs.String("csv-out", "", "write measured/modeled byte counters as CSV")
	strict := fs.Bool("strict", false, "exit nonzero when a gating row or toggle fails")
	fs.Parse(args)

	cfg := calib.Config{
		LogN: *logN, Limbs: *limbs, Dnum: *dnum,
		CacheLimbs: *cacheLimbs, LineBytes: *line, Ways: *ways,
		Tolerance: *tol,
		Diags:     *diags, Rotations: *rotations,
		Bootstrap: *boot,
	}
	rep, err := calib.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "validate:", err)
		os.Exit(1)
	}
	rep.WriteTable(os.Stdout)
	pass := rep.AllWithinTolerance()
	if pass {
		fmt.Println("\nvalidation: PASS (gating rows within tolerance, toggle directions reproduced)")
	} else {
		fmt.Println("\nvalidation: FAIL (see rows above; deviations are discussed in docs/OBSERVABILITY.md)")
	}

	if *out != "" {
		writeBenchJSON(validateReport{
			Meta: collectMeta(fmt.Sprintf("logN=%d limbs=%d dnum=%d cacheLimbs=%d", cfg.LogN, cfg.Limbs, cfg.Dnum, cfg.CacheLimbs)),
			Pass: pass, Report: rep,
		}, *out)
	}
	counters := rep.Counters()
	if *metricsOut != "" || *csvOut != "" || debugRec != nil {
		snap := obs.Snapshot{Counters: counters}
		write := func(path, what string, fn func() error) {
			if err := fn(); err != nil {
				fmt.Fprintln(os.Stderr, "validate:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s to %s\n", what, path)
		}
		if *metricsOut != "" {
			f, err := os.Create(*metricsOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "validate:", err)
				os.Exit(1)
			}
			write(*metricsOut, "Prometheus metrics", func() error { return snap.WritePrometheus(f) })
			f.Close()
		}
		if *csvOut != "" {
			f, err := os.Create(*csvOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "validate:", err)
				os.Exit(1)
			}
			write(*csvOut, "CSV counters", func() error { return snap.WriteCSV(f) })
			f.Close()
		}
		for name, v := range counters {
			debugRec.Add(name, v) // nil-safe no-op without -debug-addr
		}
	}
	if *strict && !pass {
		os.Exit(1)
	}
}
