// Command simfhe regenerates every table and figure of the paper's
// evaluation section from the simulator:
//
//	simfhe table4            primitive-operation costs and arithmetic intensity
//	simfhe fig2              cumulative caching optimizations (bootstrap DRAM)
//	simfhe fig3              cumulative algorithmic optimizations
//	simfhe table5            baseline vs optimal bootstrapping parameters
//	simfhe table6            bootstrapping throughput vs prior designs
//	simfhe fig6 [-app=lr|resnet]   LR-training / ResNet-20 comparisons
//	simfhe boot [-opts=none|caching|all] [-mb=32] [-params=baseline|optimal]
//	                         one bootstrap, phase by phase
//	simfhe cost              §4.4 performance vs area/cost trade-off
//	simfhe sweep [-axis=fftiter] sensitivity sweep around the optimal point
//	simfhe bench [-workers=1,2,4] [-out=BENCH_parallel.json]
//	                         measure the functional library across evaluator
//	                         worker counts, writing machine-readable JSON
//	simfhe benchdiff [-baseline=BENCH_extend.json] [-current=FILE] [-threshold=0.25]
//	                         compare a fresh bench report against a committed
//	                         baseline; exit nonzero past the regression
//	                         threshold (the CI perf-trajectory gate)
//	simfhe validate [-strict] [-out=FILE] [-cache-limbs=6]
//	                         trace the functional evaluator through the cache
//	                         simulator and compare measured DRAM traffic
//	                         against the analytic model (calibration report)
//	simfhe drift [-strict] [-json] [-out=FILE]
//	                         run a real bootstrap workload with the cost
//	                         ledger attached; per-op-kind predicted vs
//	                         measured traffic from the span hierarchy
//	simfhe ai                Table 4 on a roofline (ridge points, utilization)
//	simfhe json              every experiment as a machine-readable report
//	simfhe run <file>        run a schedule DSL file through the model
//	                         (one op per line: mult x5 / rotate x16 / …)
//	simfhe trace             per-sub-op cost attribution trees, exportable
//	                         as a Chrome trace / Prometheus metrics
//	simfhe all               everything above in sequence
//
// The run, boot and trace subcommands accept -trace-out FILE (Chrome
// trace_event JSON, loadable in chrome://tracing or Perfetto) and
// -metrics-out FILE (Prometheus text format). A leading -debug-addr
// ADDR serves /debug/pprof, /metrics and a /healthz liveness report
// over HTTP while the command runs:
//
//	simfhe -debug-addr localhost:6060 run sched.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/fherr"
	"repro/internal/obs"
	"repro/internal/simfhe"
	"repro/internal/simfhe/apps"
	"repro/internal/simfhe/design"
	"repro/internal/simfhe/search"
)

// debugRec backs the /metrics endpoint when -debug-addr is set; the
// subcommands mirror their exported counters into it.
var debugRec *obs.Recorder

func main() {
	global := flag.NewFlagSet("simfhe", flag.ExitOnError)
	debugAddr := global.String("debug-addr", "",
		"serve /debug/pprof, /metrics and /healthz on this address (e.g. localhost:6060) while the command runs")
	global.Usage = func() { usage(); global.PrintDefaults() }
	global.Parse(os.Args[1:])
	rest := global.Args()
	if len(rest) < 1 {
		usage()
		os.Exit(2)
	}
	var dbg *obs.DebugServer
	if *debugAddr != "" {
		debugRec = obs.NewRecorder()
		var err error
		dbg, err = obs.NewDebugServer(*debugAddr, debugRec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simfhe:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "debug server: http://%s/debug/pprof/ and http://%s/metrics\n", dbg.Addr, dbg.Addr)
	}
	cmd, args := rest[0], rest[1:]
	if err := runRecovered(cmd, args); err != nil {
		// A panic anywhere in the model is a bug, not a usage error:
		// report it with its own exit code so harnesses can tell the two
		// apart, after draining the debug server.
		fmt.Fprintln(os.Stderr, "simfhe:", err)
		dbg.Shutdown(2 * time.Second)
		os.Exit(fherr.ExitInternal)
	}
	if dbg != nil {
		fmt.Fprintln(os.Stderr, "command done; still serving -debug-addr endpoints (SIGINT to exit)")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		// Bounded drain: in-flight profile scrapes get two seconds, then
		// the listener is force-closed so the process cannot hang.
		if err := dbg.Shutdown(2 * time.Second); err != nil {
			fmt.Fprintln(os.Stderr, "simfhe: debug server shutdown:", err)
		}
	}
}

// runRecovered converts a panic inside any subcommand into a typed
// error so main can exit with the internal-error code instead of a
// stack-trace crash.
func runRecovered(cmd string, args []string) (err error) {
	defer fherr.RecoverTo(&err)
	run(cmd, args)
	return nil
}

func run(cmd string, args []string) {
	switch cmd {
	case "table4":
		table4()
	case "fig2":
		fig2()
	case "fig3":
		fig3()
	case "table5":
		table5()
	case "table6":
		table6()
	case "fig6":
		fig6(args)
	case "boot":
		boot(args)
	case "cost":
		costTradeoff()
	case "run":
		runSchedule(args)
	case "trace":
		traceCmd(args)
	case "sweep":
		sweep(args)
	case "bench":
		benchCmd(args)
	case "benchdiff":
		benchdiffCmd(args)
	case "validate":
		validateCmd(args)
	case "drift":
		driftCmd(args)
	case "ai":
		aiRoofline()
	case "json":
		if err := core.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case "all":
		table4()
		fig2()
		fig3()
		table5()
		table6()
		fig6([]string{"-app=lr"})
		fig6([]string{"-app=resnet"})
		costTradeoff()
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: simfhe [-debug-addr ADDR] {table4|fig2|fig3|table5|table6|fig6|boot|cost|run|trace|sweep|bench|benchdiff|validate|drift|ai|json|all} [flags]")
	fmt.Fprintln(os.Stderr, "  run/boot/trace accept -trace-out FILE (Chrome trace JSON) and -metrics-out FILE (Prometheus text)")
	fmt.Fprintln(os.Stderr, "  bench [-workers 1,2,4] [-out FILE] measures the functional library across worker counts (JSON)")
	fmt.Fprintln(os.Stderr, "  benchdiff [-baseline FILE] [-current FILE] [-threshold 0.25] gates fresh bench results against a committed baseline")
	fmt.Fprintln(os.Stderr, "  validate [-strict] [-out FILE] traces the functional evaluator through the cache simulator and compares measured vs modeled DRAM traffic")
	fmt.Fprintln(os.Stderr, "  drift [-strict] [-json] [-out FILE] runs a bootstrap workload with the cost ledger attached and reports per-op-kind predicted vs measured traffic")
}

// refMachine is the paper's 32 MB reference system (8192 modular
// multipliers at 1 GHz, 1 TB/s of DRAM bandwidth) — the roofline used to
// lay modeled costs out on a synthetic timeline.
var refMachine = simfhe.Machine{PeakOpsPerSec: 8192e9, PeakBytesPerSec: 1e12}

// parseOpts maps the shared -opts flag value.
func parseOpts(name string) simfhe.OptSet {
	switch name {
	case "none":
		return simfhe.NoOpts()
	case "caching":
		return simfhe.CachingOpts()
	case "all":
		return simfhe.AllOpts()
	default:
		fmt.Fprintln(os.Stderr, "unknown -opts:", name)
		os.Exit(2)
		return simfhe.OptSet{}
	}
}

// parseParams maps the shared -params flag value.
func parseParams(name string) simfhe.Params {
	switch name {
	case "baseline":
		return simfhe.Baseline()
	case "optimal":
		return simfhe.Optimal()
	default:
		fmt.Fprintln(os.Stderr, "unknown -params:", name)
		os.Exit(2)
		return simfhe.Params{}
	}
}

// traceBuilder lays several attribution trees out sequentially on one
// synthetic timeline, keeping span IDs globally unique.
type traceBuilder struct {
	m      simfhe.Machine
	spans  []obs.SpanRecord
	cursor time.Duration
	idOff  uint64
}

func (b *traceBuilder) add(t *simfhe.CostTree) {
	sp := t.SpanRecords(b.m, b.cursor)
	for i := range sp {
		sp[i].ID += b.idOff
		if sp[i].Parent != 0 {
			sp[i].Parent += b.idOff
		}
	}
	b.idOff += uint64(len(sp))
	if len(sp) > 0 {
		b.cursor = sp[0].Start + sp[0].Dur
	}
	b.spans = append(b.spans, sp...)
}

// exportObs writes the trace and/or metrics files (empty paths skip) and
// mirrors the counters into the -debug-addr recorder when one is live.
func exportObs(traceOut, metricsOut string, spans []obs.SpanRecord, counters map[string]uint64) {
	snap := obs.Snapshot{Spans: spans, Counters: counters}
	write := func(path, what string, fn func(io.Writer) error) {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := fn(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s to %s\n", what, path)
	}
	if traceOut != "" {
		write(traceOut, "Chrome trace", snap.WriteChromeTrace)
	}
	if metricsOut != "" {
		write(metricsOut, "Prometheus metrics", snap.WritePrometheus)
	}
	for name, v := range counters {
		debugRec.Add(name, v) // nil-safe no-op without -debug-addr
	}
}

// mergeMetrics accumulates a cost's counters into dst under the prefix.
func mergeMetrics(dst map[string]uint64, prefix string, c simfhe.Cost) {
	for k, v := range c.MetricsSnapshot(prefix) {
		dst[k] += v
	}
}

func table4() {
	fmt.Println("== Table 4: ops (Gops), DRAM (GB), arithmetic intensity ==")
	fmt.Println("   logN=17, l=35, dnum=3, minimal (1-2 limb) cache")
	fmt.Printf("%-14s %10s %10s %8s   %10s %10s %8s\n", "Operation", "Gops", "GB", "AI", "paper:Gops", "paper:GB", "AI")
	for _, r := range core.Table4() {
		fmt.Printf("%-14s %10.4f %10.4f %8.2f   %10.4f %10.4f %8.2f\n",
			r.Name, r.Cost.GOps(), r.Cost.GB(), r.Cost.AI(), r.Paper.GOps, r.Paper.GB, r.Paper.AI)
	}
	fmt.Println()
}

func fig2() {
	fmt.Println("== Figure 2: cumulative caching optimizations, one bootstrap, baseline params ==")
	pts := core.Figure2()
	base := pts[0].Cost
	fmt.Printf("%-18s %6s %10s %10s %9s %8s %8s\n", "Configuration", "cache", "DRAM (GB)", "vs base", "ct-reads", "ct-wr", "AI")
	for _, pt := range pts {
		fmt.Printf("%-18s %4dMB %10.2f %+9.1f%% %8.1fG %7.1fG %8.2f  %s\n",
			pt.Name, pt.CacheMB, pt.Cost.GB(),
			100*(float64(pt.Cost.Bytes())/float64(base.Bytes())-1),
			float64(pt.Cost.CtRead)/1e9, float64(pt.Cost.CtWrite)/1e9, pt.Cost.AI(),
			bar(float64(pt.Cost.Bytes()), float64(base.Bytes()), 32))
	}
	fmt.Println("   paper cumulative DRAM: -15%, -22%, -44%, -52%; AI 0.72 -> 1.25")
	fmt.Println()
}

func fig3() {
	fmt.Println("== Figure 3: cumulative algorithmic optimizations, optimal params + caching ==")
	pts := core.Figure3()
	base := pts[0].Cost
	fmt.Printf("%-20s %10s %10s %9s %9s %8s\n", "Configuration", "Gops", "DRAM (GB)", "ops vs b", "key reads", "AI")
	for _, pt := range pts {
		fmt.Printf("%-20s %10.2f %10.2f %+8.1f%% %8.1fG %8.2f  %s\n",
			pt.Name, pt.Cost.GOps(), pt.Cost.GB(),
			100*(float64(pt.Cost.Ops())/float64(base.Ops())-1),
			float64(pt.Cost.KeyRead)/1e9, pt.Cost.AI(),
			bar(float64(pt.Cost.Bytes()), float64(base.Bytes()), 32))
	}
	fmt.Println("   paper: merge ops -6%; hoist ops -34%, ct DRAM -19%, keys +25%; keycomp keys -50%")
	fmt.Println()
}

func table5() {
	fmt.Println("== Table 5: bootstrapping parameters (n = 2^16 slots) ==")
	baseline, paperOpt, best := core.Table5()
	fmt.Printf("%-22s q=%2d L=%2d dnum=%d fftIter=%d\n", "Baseline [20]:", baseline.LogQ, baseline.L, baseline.Dnum, baseline.FFTIter)
	fmt.Printf("%-22s q=%2d L=%2d dnum=%d fftIter=%d\n", "Paper optimal:", paperOpt.LogQ, paperOpt.L, paperOpt.Dnum, paperOpt.FFTIter)
	fmt.Printf("%-22s q=%2d L=%2d dnum=%d fftIter=%d  (throughput %.0f, logQ1 %d, %.1f ms on the 32 MB reference system)\n",
		"Our search optimum:", best.Params.LogQ, best.Params.L, best.Params.Dnum, best.Params.FFTIter,
		best.Throughput, best.LogQ1, best.RuntimeMs)
	fmt.Println("   note: the paper's dnum=2 needs a 45 MB O(α) working set; under this model's strict")
	fmt.Println("   32 MB capacity filter the search prefers dnum=3 (see EXPERIMENTS.md)")
	fmt.Println()
}

func table6() {
	fmt.Println("== Table 6: bootstrapping throughput, original designs vs +MAD at 32 MB ==")
	fmt.Printf("%-18s %10s | %9s %10s %7s %10s\n", "Design", "orig tput", "MAD ms", "MAD tput", "logQ1", "normalized")
	for _, r := range core.Table6() {
		bound := "mem-bound"
		if r.MAD.ComputeBound {
			bound = "compute-bound"
		}
		fmt.Printf("%-18s %10.1f | %9.2f %10.1f %7d %10.4f  (%s)\n",
			r.Original.Name, r.OrigTput, r.MAD.RuntimeMs, r.MAD.Throughput, r.MAD.LogQ1, r.Normalized, bound)
	}
	fmt.Println("   paper normalized: GPU 0.1361, F1 0.0005, BTS 1.7178, ARK 2.1326, CL 4.6248")
	fmt.Println()
}

func fig6(args []string) {
	fs := flag.NewFlagSet("fig6", flag.ExitOnError)
	app := fs.String("app", "lr", "lr or resnet")
	fs.Parse(args)

	var data map[string][]apps.Figure6Point
	switch *app {
	case "lr":
		fmt.Println("== Figure 6 (a-e): logistic-regression training time ==")
		data = core.Figure6LR()
	case "resnet":
		fmt.Println("== Figure 6 (f-h): ResNet-20 inference time ==")
		data = core.Figure6ResNet()
	default:
		fmt.Fprintln(os.Stderr, "unknown -app:", *app)
		os.Exit(2)
	}
	names := make([]string, 0, len(data))
	for name := range data {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("%s:\n", name)
		var modeled float64
		for _, pt := range data[name] {
			note := ""
			if pt.Published {
				note = "  [published]"
			} else if modeled == 0 {
				modeled = pt.RuntimeS
			} else if modeled > 0 {
				note = fmt.Sprintf("  [%.1fx vs modeled original]", modeled/pt.RuntimeS)
			}
			fmt.Printf("   %-34s %9.3f s%s\n", pt.Label, pt.RuntimeS, note)
		}
	}
	fmt.Println()
}

func boot(args []string) {
	fs := flag.NewFlagSet("boot", flag.ExitOnError)
	optsName := fs.String("opts", "all", "none | caching | all")
	mb := fs.Int("mb", 32, "on-chip memory in MB")
	paramsName := fs.String("params", "optimal", "baseline | optimal")
	logSlots := fs.Int("slots", 0, "log2 of sparse slot count (0 = fully packed)")
	traceOut := fs.String("trace-out", "", "write the bootstrap attribution as Chrome trace JSON")
	metricsOut := fs.String("metrics-out", "", "write the bootstrap cost as Prometheus text metrics")
	fs.Parse(args)

	p := parseParams(*paramsName)
	p.LogSlots = *logSlots
	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opts := parseOpts(*optsName)

	ctx := simfhe.NewCtx(p, simfhe.MB(*mb), opts)
	bd := ctx.Bootstrap()
	fmt.Printf("== One bootstrap: %v, %d MB cache, opts=%s ==\n", p, *mb, *optsName)
	fmt.Printf("effective opts: %+v\n", ctx.Opts)
	for _, ph := range []struct {
		name string
		c    simfhe.Cost
	}{
		{"ModRaise", bd.ModRaise},
		{"CoeffToSlot", bd.CoeffToSlot},
		{"EvalMod", bd.EvalMod},
		{"SlotToCoeff", bd.SlotToCoeff},
		{"TOTAL", bd.Total()},
	} {
		fmt.Printf("%-12s %10.2f Gops %10.2f GB  AI %5.2f  switches %d\n",
			ph.name, ph.c.GOps(), ph.c.GB(), ph.c.AI(), ph.c.OrientationSwitches)
	}
	fmt.Printf("levels consumed %d, limbs after %d, logQ1 %d\n\n", bd.LevelsConsumed, bd.LimbsAfter, bd.LogQ1)

	if *traceOut != "" || *metricsOut != "" || debugRec != nil {
		tb := &traceBuilder{m: refMachine}
		tb.add(ctx.BootstrapTree())
		metrics := map[string]uint64{}
		mergeMetrics(metrics, "simfhe_bootstrap", bd.Total())
		exportObs(*traceOut, *metricsOut, tb.spans, metrics)
	}
}

func costTradeoff() {
	fmt.Println("== §4.4: performance vs area/cost (BTS design + MAD, sweeping on-chip memory) ==")
	a := design.DefaultAreaModel()
	fmt.Printf("%6s %10s %10s %10s %10s %10s %10s\n", "MB", "boot ms", "tput", "die mm2", "tput/mm2", "mem frac", "rel cost")
	for _, pt := range design.Tradeoff(a, design.BTS, []int{32, 64, 128, 256, 512}, simfhe.Optimal()) {
		fmt.Printf("%6d %10.1f %10.0f %10.0f %10.2f %9.0f%% %10.2f\n",
			pt.Design.OnChipMB, pt.RuntimeMs, pt.Throughput, pt.AreaMm2,
			pt.TputPerMm2, 100*pt.MemoryFrac, pt.CostVsDefault)
	}
	fmt.Println("   paper: a 16x memory reduction (512 -> 32 MB) proportionally reduces the cost of the solution")
	fmt.Println()
}

// demoSchedule stands in when `simfhe run` has neither a file argument
// nor piped stdin, so the trace/metrics exporters are one command away.
const demoSchedule = `name: demo
mult x2
rotate x4
rescale
ptmult x2
add x4
`

func runSchedule(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	optsName := fs.String("opts", "all", "none | caching | all")
	mb := fs.Int("mb", 32, "on-chip memory in MB")
	traceOut := fs.String("trace-out", "", "write the per-step attribution as Chrome trace JSON")
	metricsOut := fs.String("metrics-out", "", "write the schedule totals as Prometheus text metrics")
	fs.Parse(args)
	var in io.Reader = os.Stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	} else if st, err := os.Stdin.Stat(); err == nil && st.Mode()&os.ModeCharDevice != 0 {
		// Interactive terminal (or /dev/null) and no file: don't block on
		// stdin, run the built-in demo schedule instead.
		fmt.Fprintln(os.Stderr, "no schedule file and no piped stdin; running the built-in demo schedule")
		in = strings.NewReader(demoSchedule)
	}
	sched, err := simfhe.ParseSchedule(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opts := parseOpts(*optsName)
	ctx := simfhe.NewCtx(simfhe.Optimal(), simfhe.MB(*mb), opts)
	res, err := ctx.RunSchedule(sched)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	name := sched.Name
	if name == "" {
		name = "(unnamed)"
	}
	fmt.Printf("schedule %s: %d steps, %d bootstraps inserted, final level %d\n",
		name, len(res.PerStep), res.Bootstraps, res.FinalLimbs)
	fmt.Printf("total: %.2f Gops, %.2f GB DRAM, AI %.2f\n",
		res.Total.GOps(), res.Total.GB(), res.Total.AI())
	for _, d := range design.All() {
		rt := d.WithMemory(*mb).RuntimeSeconds(res.Total)
		fmt.Printf("   on %-18s %10.3f s\n", d.Name, rt)
	}

	if *traceOut != "" || *metricsOut != "" || debugRec != nil {
		spans, metrics := scheduleTrace(ctx, res)
		mergeMetrics(metrics, "simfhe_total", res.Total)
		exportObs(*traceOut, *metricsOut, spans, metrics)
	}
}

// scheduleTrace replays a schedule result step by step, attaching one
// attribution tree per executed op (and per auto-inserted bootstrap) to a
// synthetic roofline timeline. The replay mirrors RunSchedule's level
// tracking, and cross-checks it against the recorded per-step limb counts.
func scheduleTrace(ctx simfhe.Ctx, res simfhe.ScheduleResult) ([]obs.SpanRecord, map[string]uint64) {
	startLevel := ctx.Bootstrap().LimbsAfter
	level := startLevel
	tb := &traceBuilder{m: refMachine}
	metrics := map[string]uint64{}
	for _, sc := range res.PerStep {
		kind := sc.Step.Kind
		if kind == simfhe.OpBootstrap {
			tb.add(ctx.BootstrapTree())
			metrics["simfhe_ops_bootstrap"]++
			level = startLevel
			continue
		}
		if level-kind.LevelCost() < 1 {
			// RunSchedule inserted a bootstrap before this step.
			tb.add(ctx.BootstrapTree())
			metrics["simfhe_ops_bootstrap"]++
			level = startLevel
		}
		tb.add(ctx.OpTree(kind, level))
		metrics["simfhe_ops_"+kind.String()]++
		level -= kind.LevelCost()
		if level != sc.Limbs {
			fmt.Fprintf(os.Stderr, "warning: trace replay at level %d but schedule recorded %d\n", level, sc.Limbs)
			level = sc.Limbs
		}
	}
	return tb.spans, metrics
}

func traceCmd(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	optsName := fs.String("opts", "all", "none | caching | all")
	mb := fs.Int("mb", 32, "on-chip memory in MB")
	paramsName := fs.String("params", "optimal", "baseline | optimal")
	opName := fs.String("op", "all", "mult | rotate | keyswitch | ptmult | bootstrap | all")
	traceOut := fs.String("trace-out", "", "write the attribution as Chrome trace JSON")
	metricsOut := fs.String("metrics-out", "", "write the costs as Prometheus text metrics")
	fs.Parse(args)

	p := parseParams(*paramsName)
	ctx := simfhe.NewCtx(p, simfhe.MB(*mb), parseOpts(*optsName))
	l := p.L
	builders := map[string]func() *simfhe.CostTree{
		"mult":      func() *simfhe.CostTree { return ctx.MultTree(l) },
		"rotate":    func() *simfhe.CostTree { return ctx.RotateTree(l) },
		"keyswitch": func() *simfhe.CostTree { return ctx.KeySwitchTree(l) },
		"ptmult":    func() *simfhe.CostTree { return ctx.PtMultTree(l) },
		"bootstrap": func() *simfhe.CostTree { return ctx.BootstrapTree() },
	}
	var names []string
	if *opName == "all" {
		names = []string{"mult", "rotate", "keyswitch", "ptmult", "bootstrap"}
	} else if _, ok := builders[*opName]; ok {
		names = []string{*opName}
	} else {
		fmt.Fprintln(os.Stderr, "unknown -op:", *opName)
		os.Exit(2)
	}

	fmt.Printf("== Cost attribution trees: %v, %d MB cache, opts=%s ==\n", p, *mb, *optsName)
	tb := &traceBuilder{m: refMachine}
	metrics := map[string]uint64{}
	for _, name := range names {
		t := builders[name]()
		t.Render(os.Stdout)
		fmt.Println()
		tb.add(t)
		mergeMetrics(metrics, "simfhe_"+name, t.Total())
	}
	exportObs(*traceOut, *metricsOut, tb.spans, metrics)
}

func sweep(args []string) {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	axisName := fs.String("axis", "fftiter", "logq | L | dnum | fftiter | cache")
	fs.Parse(args)
	axis := search.Axis(*axisName)
	values := map[search.Axis][]int{
		search.AxisLogQ:    {30, 35, 40, 45, 50, 54, 58},
		search.AxisL:       {25, 30, 35, 40, 45, 50},
		search.AxisDnum:    {1, 2, 3, 4, 5, 6},
		search.AxisFFTIter: {1, 2, 3, 4, 5, 6, 7, 8},
		search.AxisCacheMB: {1, 2, 6, 16, 27, 32, 64, 128, 256},
	}[axis]
	if values == nil {
		fmt.Fprintln(os.Stderr, "unknown axis:", *axisName)
		os.Exit(2)
	}
	fmt.Printf("== Sensitivity: %s around the optimal point (all MAD opts, 32 MB reference) ==\n", axis)
	fmt.Printf("%8s %10s %10s %8s %10s\n", string(axis), "runtime", "throughput", "logQ1", "feasible")
	for _, pt := range search.Sweep(axis, values, simfhe.Optimal(), search.ReferenceDesign(), simfhe.AllOpts()) {
		if !pt.Feasible {
			fmt.Printf("%8d %10s %10s %8s %10s\n", pt.Value, "-", "-", "-", "no")
			continue
		}
		fmt.Printf("%8d %8.1fms %10.0f %8d %10s\n", pt.Value, pt.RuntimeMs, pt.Throughput, pt.LogQ1, "yes")
	}
	fmt.Println()
}

func aiRoofline() {
	fmt.Println("== Arithmetic intensity on a roofline (8192 multipliers @1 GHz, 1 TB/s) ==")
	m := simfhe.Machine{PeakOpsPerSec: 8192e9, PeakBytesPerSec: 1e12}
	fmt.Printf("ridge point: %.1f ops/byte\n", m.RidgeAI())
	ctx := simfhe.NewCtx(simfhe.Baseline(), simfhe.MB(2), simfhe.NoOpts())
	l := ctx.P.L
	named := map[string]simfhe.Cost{
		"Add":       ctx.Add(l),
		"PtMult":    ctx.PtMult(l),
		"Mult":      ctx.Mult(l),
		"Rotate":    ctx.Rotate(l),
		"Bootstrap": ctx.Bootstrap().Total(),
	}
	optimized := simfhe.NewCtx(simfhe.Optimal(), simfhe.MB(64), simfhe.AllOpts())
	named["Bootstrap+MAD"] = optimized.Bootstrap().Total()
	pts := simfhe.Roofline(m, named)
	sort.Slice(pts, func(i, j int) bool { return pts[i].AI < pts[j].AI })
	fmt.Printf("%-14s %10s %14s %12s %12s\n", "workload", "AI", "attainable", "utilization", "bound")
	for _, pt := range pts {
		bound := "memory"
		if !pt.MemoryBound {
			bound = "compute"
		}
		fmt.Printf("%-14s %10.2f %11.2f Gop/s %11.1f%% %12s\n",
			pt.Name, pt.AI, pt.Attainable/1e9, 100*pt.Utilization, bound)
	}
	fmt.Println("   paper §2.3: all primitives < 1 op/byte -> memory-bound on any realistic platform")
	fmt.Println()
}

// bar renders a proportional text bar (the figures' visual).
func bar(value, reference float64, width int) string {
	if reference <= 0 {
		return ""
	}
	n := int(value / reference * float64(width))
	if n > width*2 {
		n = width * 2
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
