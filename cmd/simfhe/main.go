// Command simfhe regenerates every table and figure of the paper's
// evaluation section from the simulator:
//
//	simfhe table4            primitive-operation costs and arithmetic intensity
//	simfhe fig2              cumulative caching optimizations (bootstrap DRAM)
//	simfhe fig3              cumulative algorithmic optimizations
//	simfhe table5            baseline vs optimal bootstrapping parameters
//	simfhe table6            bootstrapping throughput vs prior designs
//	simfhe fig6 [-app=lr|resnet]   LR-training / ResNet-20 comparisons
//	simfhe boot [-opts=none|caching|all] [-mb=32] [-params=baseline|optimal]
//	                         one bootstrap, phase by phase
//	simfhe cost              §4.4 performance vs area/cost trade-off
//	simfhe sweep [-axis=fftiter] sensitivity sweep around the optimal point
//	simfhe ai                Table 4 on a roofline (ridge points, utilization)
//	simfhe json              every experiment as a machine-readable report
//	simfhe run <file>        run a schedule DSL file through the model
//	                         (one op per line: mult x5 / rotate x16 / …)
//	simfhe all               everything above in sequence
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/simfhe"
	"repro/internal/simfhe/apps"
	"repro/internal/simfhe/design"
	"repro/internal/simfhe/search"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "table4":
		table4()
	case "fig2":
		fig2()
	case "fig3":
		fig3()
	case "table5":
		table5()
	case "table6":
		table6()
	case "fig6":
		fig6(args)
	case "boot":
		boot(args)
	case "cost":
		costTradeoff()
	case "run":
		runSchedule(args)
	case "sweep":
		sweep(args)
	case "ai":
		aiRoofline()
	case "json":
		if err := core.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case "all":
		table4()
		fig2()
		fig3()
		table5()
		table6()
		fig6([]string{"-app=lr"})
		fig6([]string{"-app=resnet"})
		costTradeoff()
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: simfhe {table4|fig2|fig3|table5|table6|fig6|boot|cost|run|sweep|ai|json|all} [flags]")
}

func table4() {
	fmt.Println("== Table 4: ops (Gops), DRAM (GB), arithmetic intensity ==")
	fmt.Println("   logN=17, l=35, dnum=3, minimal (1-2 limb) cache")
	fmt.Printf("%-14s %10s %10s %8s   %10s %10s %8s\n", "Operation", "Gops", "GB", "AI", "paper:Gops", "paper:GB", "AI")
	for _, r := range core.Table4() {
		fmt.Printf("%-14s %10.4f %10.4f %8.2f   %10.4f %10.4f %8.2f\n",
			r.Name, r.Cost.GOps(), r.Cost.GB(), r.Cost.AI(), r.Paper.GOps, r.Paper.GB, r.Paper.AI)
	}
	fmt.Println()
}

func fig2() {
	fmt.Println("== Figure 2: cumulative caching optimizations, one bootstrap, baseline params ==")
	pts := core.Figure2()
	base := pts[0].Cost
	fmt.Printf("%-18s %6s %10s %10s %9s %8s %8s\n", "Configuration", "cache", "DRAM (GB)", "vs base", "ct-reads", "ct-wr", "AI")
	for _, pt := range pts {
		fmt.Printf("%-18s %4dMB %10.2f %+9.1f%% %8.1fG %7.1fG %8.2f  %s\n",
			pt.Name, pt.CacheMB, pt.Cost.GB(),
			100*(float64(pt.Cost.Bytes())/float64(base.Bytes())-1),
			float64(pt.Cost.CtRead)/1e9, float64(pt.Cost.CtWrite)/1e9, pt.Cost.AI(),
			bar(float64(pt.Cost.Bytes()), float64(base.Bytes()), 32))
	}
	fmt.Println("   paper cumulative DRAM: -15%, -22%, -44%, -52%; AI 0.72 -> 1.25")
	fmt.Println()
}

func fig3() {
	fmt.Println("== Figure 3: cumulative algorithmic optimizations, optimal params + caching ==")
	pts := core.Figure3()
	base := pts[0].Cost
	fmt.Printf("%-20s %10s %10s %9s %9s %8s\n", "Configuration", "Gops", "DRAM (GB)", "ops vs b", "key reads", "AI")
	for _, pt := range pts {
		fmt.Printf("%-20s %10.2f %10.2f %+8.1f%% %8.1fG %8.2f  %s\n",
			pt.Name, pt.Cost.GOps(), pt.Cost.GB(),
			100*(float64(pt.Cost.Ops())/float64(base.Ops())-1),
			float64(pt.Cost.KeyRead)/1e9, pt.Cost.AI(),
			bar(float64(pt.Cost.Bytes()), float64(base.Bytes()), 32))
	}
	fmt.Println("   paper: merge ops -6%; hoist ops -34%, ct DRAM -19%, keys +25%; keycomp keys -50%")
	fmt.Println()
}

func table5() {
	fmt.Println("== Table 5: bootstrapping parameters (n = 2^16 slots) ==")
	baseline, paperOpt, best := core.Table5()
	fmt.Printf("%-22s q=%2d L=%2d dnum=%d fftIter=%d\n", "Baseline [20]:", baseline.LogQ, baseline.L, baseline.Dnum, baseline.FFTIter)
	fmt.Printf("%-22s q=%2d L=%2d dnum=%d fftIter=%d\n", "Paper optimal:", paperOpt.LogQ, paperOpt.L, paperOpt.Dnum, paperOpt.FFTIter)
	fmt.Printf("%-22s q=%2d L=%2d dnum=%d fftIter=%d  (throughput %.0f, logQ1 %d, %.1f ms on the 32 MB reference system)\n",
		"Our search optimum:", best.Params.LogQ, best.Params.L, best.Params.Dnum, best.Params.FFTIter,
		best.Throughput, best.LogQ1, best.RuntimeMs)
	fmt.Println("   note: the paper's dnum=2 needs a 45 MB O(α) working set; under this model's strict")
	fmt.Println("   32 MB capacity filter the search prefers dnum=3 (see EXPERIMENTS.md)")
	fmt.Println()
}

func table6() {
	fmt.Println("== Table 6: bootstrapping throughput, original designs vs +MAD at 32 MB ==")
	fmt.Printf("%-18s %10s | %9s %10s %7s %10s\n", "Design", "orig tput", "MAD ms", "MAD tput", "logQ1", "normalized")
	for _, r := range core.Table6() {
		bound := "mem-bound"
		if r.MAD.ComputeBound {
			bound = "compute-bound"
		}
		fmt.Printf("%-18s %10.1f | %9.2f %10.1f %7d %10.4f  (%s)\n",
			r.Original.Name, r.OrigTput, r.MAD.RuntimeMs, r.MAD.Throughput, r.MAD.LogQ1, r.Normalized, bound)
	}
	fmt.Println("   paper normalized: GPU 0.1361, F1 0.0005, BTS 1.7178, ARK 2.1326, CL 4.6248")
	fmt.Println()
}

func fig6(args []string) {
	fs := flag.NewFlagSet("fig6", flag.ExitOnError)
	app := fs.String("app", "lr", "lr or resnet")
	fs.Parse(args)

	var data map[string][]apps.Figure6Point
	switch *app {
	case "lr":
		fmt.Println("== Figure 6 (a-e): logistic-regression training time ==")
		data = core.Figure6LR()
	case "resnet":
		fmt.Println("== Figure 6 (f-h): ResNet-20 inference time ==")
		data = core.Figure6ResNet()
	default:
		fmt.Fprintln(os.Stderr, "unknown -app:", *app)
		os.Exit(2)
	}
	names := make([]string, 0, len(data))
	for name := range data {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("%s:\n", name)
		var modeled float64
		for _, pt := range data[name] {
			note := ""
			if pt.Published {
				note = "  [published]"
			} else if modeled == 0 {
				modeled = pt.RuntimeS
			} else if modeled > 0 {
				note = fmt.Sprintf("  [%.1fx vs modeled original]", modeled/pt.RuntimeS)
			}
			fmt.Printf("   %-34s %9.3f s%s\n", pt.Label, pt.RuntimeS, note)
		}
	}
	fmt.Println()
}

func boot(args []string) {
	fs := flag.NewFlagSet("boot", flag.ExitOnError)
	optsName := fs.String("opts", "all", "none | caching | all")
	mb := fs.Int("mb", 32, "on-chip memory in MB")
	paramsName := fs.String("params", "optimal", "baseline | optimal")
	logSlots := fs.Int("slots", 0, "log2 of sparse slot count (0 = fully packed)")
	fs.Parse(args)

	var p simfhe.Params
	switch *paramsName {
	case "baseline":
		p = simfhe.Baseline()
	case "optimal":
		p = simfhe.Optimal()
	default:
		fmt.Fprintln(os.Stderr, "unknown -params:", *paramsName)
		os.Exit(2)
	}
	p.LogSlots = *logSlots
	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var opts simfhe.OptSet
	switch *optsName {
	case "none":
		opts = simfhe.NoOpts()
	case "caching":
		opts = simfhe.CachingOpts()
	case "all":
		opts = simfhe.AllOpts()
	default:
		fmt.Fprintln(os.Stderr, "unknown -opts:", *optsName)
		os.Exit(2)
	}

	ctx := simfhe.NewCtx(p, simfhe.MB(*mb), opts)
	bd := ctx.Bootstrap()
	fmt.Printf("== One bootstrap: %v, %d MB cache, opts=%s ==\n", p, *mb, *optsName)
	fmt.Printf("effective opts: %+v\n", ctx.Opts)
	for _, ph := range []struct {
		name string
		c    simfhe.Cost
	}{
		{"ModRaise", bd.ModRaise},
		{"CoeffToSlot", bd.CoeffToSlot},
		{"EvalMod", bd.EvalMod},
		{"SlotToCoeff", bd.SlotToCoeff},
		{"TOTAL", bd.Total()},
	} {
		fmt.Printf("%-12s %10.2f Gops %10.2f GB  AI %5.2f  switches %d\n",
			ph.name, ph.c.GOps(), ph.c.GB(), ph.c.AI(), ph.c.OrientationSwitches)
	}
	fmt.Printf("levels consumed %d, limbs after %d, logQ1 %d\n\n", bd.LevelsConsumed, bd.LimbsAfter, bd.LogQ1)
}

func costTradeoff() {
	fmt.Println("== §4.4: performance vs area/cost (BTS design + MAD, sweeping on-chip memory) ==")
	a := design.DefaultAreaModel()
	fmt.Printf("%6s %10s %10s %10s %10s %10s %10s\n", "MB", "boot ms", "tput", "die mm2", "tput/mm2", "mem frac", "rel cost")
	for _, pt := range design.Tradeoff(a, design.BTS, []int{32, 64, 128, 256, 512}, simfhe.Optimal()) {
		fmt.Printf("%6d %10.1f %10.0f %10.0f %10.2f %9.0f%% %10.2f\n",
			pt.Design.OnChipMB, pt.RuntimeMs, pt.Throughput, pt.AreaMm2,
			pt.TputPerMm2, 100*pt.MemoryFrac, pt.CostVsDefault)
	}
	fmt.Println("   paper: a 16x memory reduction (512 -> 32 MB) proportionally reduces the cost of the solution")
	fmt.Println()
}

func runSchedule(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	optsName := fs.String("opts", "all", "none | caching | all")
	mb := fs.Int("mb", 32, "on-chip memory in MB")
	fs.Parse(args)
	var in io.Reader = os.Stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	sched, err := simfhe.ParseSchedule(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opts := simfhe.AllOpts()
	switch *optsName {
	case "none":
		opts = simfhe.NoOpts()
	case "caching":
		opts = simfhe.CachingOpts()
	}
	ctx := simfhe.NewCtx(simfhe.Optimal(), simfhe.MB(*mb), opts)
	res, err := ctx.RunSchedule(sched)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	name := sched.Name
	if name == "" {
		name = "(unnamed)"
	}
	fmt.Printf("schedule %s: %d steps, %d bootstraps inserted, final level %d\n",
		name, len(res.PerStep), res.Bootstraps, res.FinalLimbs)
	fmt.Printf("total: %.2f Gops, %.2f GB DRAM, AI %.2f\n",
		res.Total.GOps(), res.Total.GB(), res.Total.AI())
	for _, d := range design.All() {
		rt := d.WithMemory(*mb).RuntimeSeconds(res.Total)
		fmt.Printf("   on %-18s %10.3f s\n", d.Name, rt)
	}
}

func sweep(args []string) {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	axisName := fs.String("axis", "fftiter", "logq | L | dnum | fftiter | cache")
	fs.Parse(args)
	axis := search.Axis(*axisName)
	values := map[search.Axis][]int{
		search.AxisLogQ:    {30, 35, 40, 45, 50, 54, 58},
		search.AxisL:       {25, 30, 35, 40, 45, 50},
		search.AxisDnum:    {1, 2, 3, 4, 5, 6},
		search.AxisFFTIter: {1, 2, 3, 4, 5, 6, 7, 8},
		search.AxisCacheMB: {1, 2, 6, 16, 27, 32, 64, 128, 256},
	}[axis]
	if values == nil {
		fmt.Fprintln(os.Stderr, "unknown axis:", *axisName)
		os.Exit(2)
	}
	fmt.Printf("== Sensitivity: %s around the optimal point (all MAD opts, 32 MB reference) ==\n", axis)
	fmt.Printf("%8s %10s %10s %8s %10s\n", string(axis), "runtime", "throughput", "logQ1", "feasible")
	for _, pt := range search.Sweep(axis, values, simfhe.Optimal(), search.ReferenceDesign(), simfhe.AllOpts()) {
		if !pt.Feasible {
			fmt.Printf("%8d %10s %10s %8s %10s\n", pt.Value, "-", "-", "-", "no")
			continue
		}
		fmt.Printf("%8d %8.1fms %10.0f %8d %10s\n", pt.Value, pt.RuntimeMs, pt.Throughput, pt.LogQ1, "yes")
	}
	fmt.Println()
}

func aiRoofline() {
	fmt.Println("== Arithmetic intensity on a roofline (8192 multipliers @1 GHz, 1 TB/s) ==")
	m := simfhe.Machine{PeakOpsPerSec: 8192e9, PeakBytesPerSec: 1e12}
	fmt.Printf("ridge point: %.1f ops/byte\n", m.RidgeAI())
	ctx := simfhe.NewCtx(simfhe.Baseline(), simfhe.MB(2), simfhe.NoOpts())
	l := ctx.P.L
	named := map[string]simfhe.Cost{
		"Add":       ctx.Add(l),
		"PtMult":    ctx.PtMult(l),
		"Mult":      ctx.Mult(l),
		"Rotate":    ctx.Rotate(l),
		"Bootstrap": ctx.Bootstrap().Total(),
	}
	optimized := simfhe.NewCtx(simfhe.Optimal(), simfhe.MB(64), simfhe.AllOpts())
	named["Bootstrap+MAD"] = optimized.Bootstrap().Total()
	pts := simfhe.Roofline(m, named)
	sort.Slice(pts, func(i, j int) bool { return pts[i].AI < pts[j].AI })
	fmt.Printf("%-14s %10s %14s %12s %12s\n", "workload", "AI", "attainable", "utilization", "bound")
	for _, pt := range pts {
		bound := "memory"
		if !pt.MemoryBound {
			bound = "compute"
		}
		fmt.Printf("%-14s %10.2f %11.2f Gop/s %11.1f%% %12s\n",
			pt.Name, pt.AI, pt.Attainable/1e9, 100*pt.Utilization, bound)
	}
	fmt.Println("   paper §2.3: all primitives < 1 op/byte -> memory-bound on any realistic platform")
	fmt.Println()
}

// bar renders a proportional text bar (the figures' visual).
func bar(value, reference float64, width int) string {
	if reference <= 0 {
		return ""
	}
	n := int(value / reference * float64(width))
	if n > width*2 {
		n = width * 2
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
