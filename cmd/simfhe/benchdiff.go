package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/benchdiff"
)

// benchdiffCmd is the perf-trajectory gate: it compares a fresh bench
// report against a committed baseline and exits nonzero when any metric
// slowed past the threshold. CI runs it after the bench suites so kernel
// regressions fail the build the same way broken tests do.
func benchdiffCmd(args []string) {
	fs := flag.NewFlagSet("benchdiff", flag.ExitOnError)
	baseline := fs.String("baseline", "BENCH_extend.json", "committed baseline report (JSON)")
	current := fs.String("current", "", "fresh report to compare (JSON); empty measures the extend suite now")
	suite := fs.String("suite", "extend", "suite to measure when -current is empty: extend or ntt (parallel must be pre-measured)")
	threshold := fs.Float64("threshold", 0.25, "max allowed slowdown fraction (0.25 = +25%)")
	fs.Parse(args)

	curPath := *current
	if curPath == "" {
		var measure func(string)
		switch *suite {
		case "extend":
			measure = benchExtendSuite
		case "ntt":
			measure = benchNTTSuite
		default:
			fmt.Fprintln(os.Stderr, "benchdiff: only the extend and ntt suites can be measured in-process; "+
				"run `simfhe bench -suite parallel -out FILE` first and pass -current FILE")
			os.Exit(2)
		}
		tmp, err := os.MkdirTemp("", "benchdiff")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(1)
		}
		defer os.RemoveAll(tmp)
		curPath = filepath.Join(tmp, "current.json")
		fmt.Fprintf(os.Stderr, "benchdiff: measuring fresh %s suite ...\n", *suite)
		measure(curPath)
	}

	base, err := benchdiff.FlattenFile(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	cur, err := benchdiff.FlattenFile(curPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}

	rep := benchdiff.Compare(base, cur, *threshold)
	if err := rep.Render(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	if !rep.OK() {
		fmt.Fprintf(os.Stderr, "benchdiff: FAIL — %d metric(s) regressed past +%.0f%% (or no comparable/new metrics at all)\n",
			rep.Regressed, *threshold*100)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "benchdiff: ok")
}
