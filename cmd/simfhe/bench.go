package main

// The bench subcommand complements the simulator: where every other
// subcommand reports *modeled* costs, bench measures the functional
// library on real silicon, sweeping the evaluator's worker knob across a
// bootstrap-scale workload and writing the results as machine-readable
// JSON (BENCH_parallel.json). The outputs at every worker count are
// bit-identical — the tests assert it — so the sweep isolates pure
// wall-clock effects of limb-level parallelism.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/bootstrap"
	"repro/internal/ckks"
	"repro/internal/prng"
)

// benchResult is one (workload, workers) measurement.
type benchResult struct {
	Workers int     `json:"workers"`
	Iters   int     `json:"iters"`
	NsPerOp int64   `json:"ns_per_op"`
	Speedup float64 `json:"speedup_vs_serial"`
}

type benchWorkload struct {
	Name    string        `json:"name"`
	LogN    int           `json:"logN"`
	Limbs   int           `json:"limbs"`
	Results []benchResult `json:"results"`
}

type benchReport struct {
	Meta       runMeta         `json:"meta"`
	GoMaxProcs int             `json:"gomaxprocs"`
	NumCPU     int             `json:"num_cpu"`
	Note       string          `json:"note"`
	Workloads  []benchWorkload `json:"workloads"`
}

func parseWorkerList(s string) ([]int, error) {
	if s == "" {
		counts := []int{1, 2, runtime.NumCPU()}
		sort.Ints(counts)
		var out []int
		for _, c := range counts {
			if len(out) == 0 || c > out[len(out)-1] {
				out = append(out, c)
			}
		}
		return out, nil
	}
	var out []int
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad worker count %q", tok)
		}
		out = append(out, v)
	}
	return out, nil
}

func benchCmd(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	workersFlag := fs.String("workers", "", "comma-separated worker counts to sweep (default 1,2,NumCPU)")
	suite := fs.String("suite", "parallel", "benchmark suite: parallel (worker sweep), extend (basis-extension kernels), ntt (fused NTT kernels + traffic replay), keys (key-vault budgets on bootstrap)")
	out := fs.String("out", "", "output JSON file (- for stdout; default BENCH_<suite>.json)")
	fs.Parse(args)
	switch *suite {
	case "parallel":
		if *out == "" {
			*out = "BENCH_parallel.json"
		}
	case "extend":
		if *out == "" {
			*out = "BENCH_extend.json"
		}
		benchExtendSuite(*out)
		return
	case "ntt":
		if *out == "" {
			*out = "BENCH_ntt.json"
		}
		benchNTTSuite(*out)
		return
	case "keys":
		if *out == "" {
			*out = "BENCH_keys.json"
		}
		benchKeysSuite(*out)
		return
	default:
		fmt.Fprintf(os.Stderr, "bench: unknown suite %q (want parallel, extend, ntt or keys)\n", *suite)
		os.Exit(2)
	}
	counts, err := parseWorkerList(*workersFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(2)
	}

	report := benchReport{
		Meta:       collectMeta(fmt.Sprintf("suite=parallel workers=%v", counts)),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Note: "outputs are bit-identical at every worker count; speedup needs " +
			"num_cpu > 1 — on a single-core host the sweep measures pool overhead only",
	}

	// Bootstrap-scale workload: 17 Q-limbs, the full modRaise → CoeffToSlot
	// → EvalMod → SlotToCoeff pipeline.
	fmt.Fprintln(os.Stderr, "bench: measuring bootstrap workload ...")
	btp, ct, logN, limbs := benchBootSetup()
	wl := benchWorkload{Name: "bootstrap", LogN: logN, Limbs: limbs}
	for _, w := range counts {
		btp.SetWorkers(w)
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = btp.Bootstrap(ct)
			}
		})
		wl.Results = append(wl.Results, benchResult{Workers: w, Iters: r.N, NsPerOp: r.NsPerOp()})
		fmt.Fprintf(os.Stderr, "bench: bootstrap workers=%d %d ns/op (%d iters)\n", w, r.NsPerOp(), r.N)
	}
	fillSpeedups(&wl)
	report.Workloads = append(report.Workloads, wl)

	// Hoisted-rotation workload: 8 rotations sharing one decomposition at
	// N = 2^12 — the CoeffToSlot/SlotToCoeff inner kernel in isolation.
	fmt.Fprintln(os.Stderr, "bench: measuring rotate_hoisted workload ...")
	ev, rct, steps, rLogN, rLimbs := benchRotateSetup()
	rl := benchWorkload{Name: "rotate_hoisted", LogN: rLogN, Limbs: rLimbs}
	for _, w := range counts {
		ev.SetWorkers(w)
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = ev.RotateHoisted(rct, steps)
			}
		})
		rl.Results = append(rl.Results, benchResult{Workers: w, Iters: r.N, NsPerOp: r.NsPerOp()})
		fmt.Fprintf(os.Stderr, "bench: rotate_hoisted workers=%d %d ns/op (%d iters)\n", w, r.NsPerOp(), r.N)
	}
	fillSpeedups(&rl)
	report.Workloads = append(report.Workloads, rl)

	writeBenchJSON(report, *out)
}

// writeBenchJSON marshals any suite report to the given path (- for
// stdout), exiting on failure.
func writeBenchJSON(report any, out string) {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote benchmark report to %s\n", out)
}

// fillSpeedups normalizes each measurement against the workload's
// workers=1 run (or the smallest measured count if 1 was excluded).
func fillSpeedups(wl *benchWorkload) {
	if len(wl.Results) == 0 {
		return
	}
	base := float64(wl.Results[0].NsPerOp)
	for i := range wl.Results {
		wl.Results[i].Speedup = base / float64(wl.Results[i].NsPerOp)
	}
}

func benchBootSetup() (*bootstrap.Bootstrapper, *ckks.Ciphertext, int, int) {
	logQ := []int{48}
	for i := 0; i < 16; i++ {
		logQ = append(logQ, 40)
	}
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN: 10, LogQ: logQ, LogP: []int{50, 50, 50}, LogScale: 40,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	var seed [prng.SeedSize]byte
	copy(seed[:], "simfhe bench deterministic seed")
	src := prng.NewSource(seed)
	kg := ckks.NewKeyGenerator(params, src)
	sk := kg.GenSecretKeySparse(16)
	btp, err := bootstrap.NewBootstrapper(params, bootstrap.DefaultParameters(), sk, src, true)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	enc := ckks.NewEncoder(params)
	ct := ckks.NewSecretKeyEncryptor(params, sk, src).Encrypt(enc.Encode(make([]complex128, params.Slots())))
	ct = btp.Evaluator().DropLevel(ct, 0)
	return btp, ct, 10, len(logQ)
}

func benchRotateSetup() (*ckks.Evaluator, *ckks.Ciphertext, []int, int, int) {
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     12,
		LogQ:     []int{50, 40, 40, 40, 40, 40},
		LogP:     []int{50, 50},
		LogScale: 40,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	var seed [prng.SeedSize]byte
	copy(seed[:], "simfhe bench deterministic seed")
	src := prng.NewSource(seed)
	kg := ckks.NewKeyGenerator(params, src)
	sk := kg.GenSecretKey()
	steps := []int{1, 2, 3, 4, 5, 6, 7, 8}
	gks := kg.GenRotationKeys(steps, sk, false)
	ev := ckks.NewEvaluator(params, &ckks.EvaluationKeySet{Galois: gks})
	enc := ckks.NewEncoder(params)
	ct := ckks.NewSecretKeyEncryptor(params, sk, src).Encrypt(enc.Encode(make([]complex128, params.Slots())))
	return ev, ct, steps, 12, 6
}
