package main

// The keys suite measures what the seed-backed key vault buys and what
// it costs, on the bootstrap workload (the key-hungriest pipeline in the
// repo: one relinearization key plus ~70 Galois keys):
//
//   - resident key bytes at each vault budget, against the
//     fully-materialized baseline (acceptance gate: ≥ 1.5× reduction at
//     the constrained budget);
//   - wall-clock overhead of demand materialization (acceptance gate:
//     < 10% at the fitting budget, where every digit expands exactly
//     once and then hits);
//   - memtrace-replayed DRAM key traffic under the infinite-cache
//     semantics ("compulsory reads in, dirty writebacks out"): the
//     baseline streams both key halves from DRAM, the vault streams only
//     the b halves — the a halves are regenerated on chip and discarded,
//     never written back. The finite-capacity direction of the same
//     effect is validated by the calib key_compress toggle;
//   - the golden contract: every budget point decrypts bit-identical to
//     the fully-materialized baseline.
//
// Results land in BENCH_keys.json; benchdiff gates the per-point ns/op
// against the committed baseline.

import (
	"fmt"
	"os"
	"time"

	"repro/internal/ckks"
	"repro/internal/memtrace"
)

const (
	// keysResidentGate is the acceptance bar on resident key bytes at the
	// constrained budget: fully-materialized / constrained ≥ 1.5×.
	keysResidentGate = 1.5
	// keysOverheadGate is the acceptance bar on wall-clock overhead at
	// the fitting budget, in percent.
	keysOverheadGate = 10.0
)

// keysVaultStats is the per-point slice of the evaluator's cumulative
// vault counters (the evaluator is shared across points, so raw
// snapshots would smear points together).
type keysVaultStats struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Expansions    uint64 `json:"expansions"`
	Evictions     uint64 `json:"evictions"`
	ResidentBytes int64  `json:"resident_bytes"` // absolute, end of point
}

type keysPoint struct {
	Name        string  `json:"name"`
	BudgetBytes int64   `json:"budget_bytes"` // -1 fully materialized, 0 unlimited vault
	NsPerOp     int64   `json:"ns_per_op"`    // min of 3 warm runs
	OverheadPct float64 `json:"overhead_vs_baseline_pct"`
	// ResidentKeyBytes is the full key footprint at the end of the
	// point: b halves and seeds held by the key structs, plus the
	// vault-resident a halves.
	ResidentKeyBytes   int64   `json:"resident_key_bytes"`
	ResidentReductionX float64 `json:"resident_reduction_x"`
	// Key-class DRAM traffic of one traced bootstrap, replayed through
	// the infinite cache.
	KeyReadBytes  uint64          `json:"key_read_bytes"`
	KeyWriteBytes uint64          `json:"key_write_bytes"`
	BitIdentical  bool            `json:"bit_identical_to_baseline"`
	Vault         *keysVaultStats `json:"vault,omitempty"`
}

type keysGates struct {
	ResidentReductionX    float64 `json:"resident_reduction_x"` // at the constrained point
	MinResidentReductionX float64 `json:"min_resident_reduction_x"`
	FittingOverheadPct    float64 `json:"fitting_overhead_pct"`
	MaxFittingOverheadPct float64 `json:"max_fitting_overhead_pct"`
	KeyTrafficReductionX  float64 `json:"key_traffic_reduction_x"` // reported, gated by calib
	BitIdentical          bool    `json:"bit_identical"`
	Pass                  bool    `json:"pass"`
}

type keysBenchReport struct {
	Meta              runMeta     `json:"meta"`
	Note              string      `json:"note"`
	LogN              int         `json:"logN"`
	Limbs             int         `json:"limbs"`
	GaloisKeys        int         `json:"galois_keys"`
	DigitBytes        int64       `json:"digit_bytes"`
	FullResidentBytes int64       `json:"full_resident_bytes"`
	SeedOnlyBytes     int64       `json:"seed_only_bytes"`
	Points            []keysPoint `json:"points"`
	Gates             keysGates   `json:"gates"`
}

// keysResident sums the key footprint: switching-key structs (b halves,
// seeds, any materialized a halves) plus vault-resident a halves.
func keysResident(params *ckks.Parameters, ev *ckks.Evaluator) int64 {
	keys := ev.Keys()
	total := params.KeyResidentBytes(&keys.Rlk.SwitchingKey)
	for _, gk := range keys.Galois {
		total += params.KeyResidentBytes(&gk.SwitchingKey)
	}
	return total + ev.KeyVaultStats().ResidentBytes
}

// keysTimeBootstrap returns the fastest of three warm runs. One untimed
// run precedes the timing so lazy state (scratch pools, and at fitting
// budgets the vault itself) is settled.
func keysTimeBootstrap(run func()) int64 {
	run()
	best := int64(0)
	for i := 0; i < 3; i++ {
		start := time.Now()
		run()
		if d := time.Since(start).Nanoseconds(); best == 0 || d < best {
			best = d
		}
	}
	return best
}

// keysTraceBootstrap replays one traced bootstrap through the infinite
// cache and returns the key-class read/write bytes. flushVault marks the
// vault's a halves as scratchpad contents at window end (discarded, not
// written back); the baseline's materialized keys have no such release.
func keysTraceBootstrap(run func(), flush func(), ev *ckks.Evaluator) (uint64, uint64) {
	tr := memtrace.New()
	ev.SetTracer(tr)
	run()
	if flush != nil {
		flush()
	}
	ev.SetTracer(nil)
	t := memtrace.Measure(tr.Slice(0, tr.Len()), memtrace.Geometry{}, tr.Classify)
	return t.ReadBytes[memtrace.ClassKey], t.WriteBytes[memtrace.ClassKey]
}

func benchKeysSuite(out string) {
	fmt.Fprintln(os.Stderr, "bench: keys suite — seed-backed key vault on the bootstrap workload")
	btp, ct, logN, limbs := benchBootSetup()
	ev := btp.Evaluator()
	params := ev.Params()
	keys := ev.Keys()

	dropAll := func() {
		keys.Rlk.DropExpanded()
		for _, gk := range keys.Galois {
			gk.DropExpanded()
		}
	}
	expandAll := func() {
		keys.Rlk.ExpandAll(params)
		for _, gk := range keys.Galois {
			gk.ExpandAll(params)
		}
	}

	digitBytes := int64(params.MaxLevel()+1+params.Alpha()) * int64(params.N()) * 8

	// Baseline: every key materialized, the vault never consulted.
	expandAll()
	fullResident := keysResident(params, ev)
	ref := btp.Bootstrap(ct)
	baseNs := keysTimeBootstrap(func() { _ = btp.Bootstrap(ct) })
	baseRead, baseWrite := keysTraceBootstrap(func() { _ = btp.Bootstrap(ct) }, nil, ev)
	fmt.Fprintf(os.Stderr, "bench: keys baseline %d ns/op, %d MiB resident, %d MiB key reads\n",
		baseNs, fullResident>>20, baseRead>>20)

	report := keysBenchReport{
		Meta:  collectMeta("suite=keys"),
		LogN:  logN,
		Limbs: limbs,
		Note: "bootstrap workload; ns_per_op is min-of-3 warm runs; key traffic is one " +
			"traced bootstrap replayed at infinite cache (compulsory reads + dirty " +
			"writebacks), vault a-halves regenerate on chip and are discarded — the " +
			"finite-capacity direction is gated by the calib key_compress toggle",
		GaloisKeys:        len(keys.Galois),
		DigitBytes:        digitBytes,
		FullResidentBytes: fullResident,
	}
	report.Points = append(report.Points, keysPoint{
		Name: "baseline_expanded", BudgetBytes: -1, NsPerOp: baseNs,
		ResidentKeyBytes: fullResident, ResidentReductionX: 1,
		KeyReadBytes: baseRead, KeyWriteBytes: baseWrite, BitIdentical: true,
	})

	// Vault points: the same keys dropped to seed-only form. The fitting
	// budget holds every a half at once (expand once, hit forever); the
	// constrained budget holds a quarter of them, forcing steady-state
	// eviction and re-expansion.
	dropAll()
	seedOnly := keysResident(params, ev)
	report.SeedOnlyBytes = seedOnly
	aTotal := fullResident - seedOnly
	budgets := []struct {
		name   string
		budget int64
	}{
		{"vault_unlimited", 0},
		{"vault_fitting", aTotal + digitBytes},
		{"vault_constrained", aTotal / 4},
	}
	prev := ev.KeyVaultStats()
	for _, bp := range budgets {
		ev.FlushKeyVault()
		ev.SetKeyBudget(bp.budget)
		outCt := btp.Bootstrap(ct)
		ns := keysTimeBootstrap(func() { _ = btp.Bootstrap(ct) })
		// Steady-state footprint and counters, captured before the traced
		// run (the trace flushes the vault to start cold).
		st := ev.KeyVaultStats()
		resident := keysResident(params, ev)
		// Cold-vault trace: every a half is expansion-written inside the
		// window (regenerated on chip, never read from DRAM) and released
		// at window end — the replay charges only the b-half stream.
		ev.FlushKeyVault()
		kr, kw := keysTraceBootstrap(func() { _ = btp.Bootstrap(ct) }, ev.FlushKeyVault, ev)
		p := keysPoint{
			Name:               bp.name,
			BudgetBytes:        bp.budget,
			NsPerOp:            ns,
			OverheadPct:        100 * (float64(ns) - float64(baseNs)) / float64(baseNs),
			ResidentKeyBytes:   resident,
			ResidentReductionX: float64(fullResident) / float64(resident),
			KeyReadBytes:       kr,
			KeyWriteBytes:      kw,
			BitIdentical:       outCt.C0.Equal(ref.C0) && outCt.C1.Equal(ref.C1),
			Vault: &keysVaultStats{
				Hits:          st.Hits - prev.Hits,
				Misses:        st.Misses - prev.Misses,
				Expansions:    st.Expansions - prev.Expansions,
				Evictions:     st.Evictions - prev.Evictions,
				ResidentBytes: st.ResidentBytes,
			},
		}
		prev = ev.KeyVaultStats()
		report.Points = append(report.Points, p)
		fmt.Fprintf(os.Stderr, "bench: keys %s budget=%d MiB %d ns/op (%+.1f%%), resident %d MiB (%.2fx), key reads %d MiB, identical=%v\n",
			bp.name, bp.budget>>20, ns, p.OverheadPct, resident>>20, p.ResidentReductionX, kr>>20, p.BitIdentical)
	}

	// Gates.
	g := &report.Gates
	g.MinResidentReductionX = keysResidentGate
	g.MaxFittingOverheadPct = keysOverheadGate
	g.BitIdentical = true
	for _, p := range report.Points {
		if !p.BitIdentical {
			g.BitIdentical = false
		}
		switch p.Name {
		case "vault_fitting":
			g.FittingOverheadPct = p.OverheadPct
		case "vault_constrained":
			g.ResidentReductionX = p.ResidentReductionX
			if p.KeyReadBytes+p.KeyWriteBytes > 0 {
				g.KeyTrafficReductionX = float64(baseRead+baseWrite) / float64(p.KeyReadBytes+p.KeyWriteBytes)
			}
		}
	}
	g.Pass = g.BitIdentical &&
		g.ResidentReductionX >= g.MinResidentReductionX &&
		g.FittingOverheadPct < g.MaxFittingOverheadPct

	writeBenchJSON(report, out)

	if !g.BitIdentical {
		fmt.Fprintln(os.Stderr, "bench: FAIL — a budget point diverged from the fully-materialized baseline")
		os.Exit(1)
	}
	if g.ResidentReductionX < g.MinResidentReductionX {
		fmt.Fprintf(os.Stderr, "bench: FAIL — constrained resident reduction %.2fx below the %.1fx gate\n",
			g.ResidentReductionX, g.MinResidentReductionX)
		os.Exit(1)
	}
	if g.FittingOverheadPct >= g.MaxFittingOverheadPct {
		fmt.Fprintf(os.Stderr, "bench: FAIL — fitting-budget overhead %.1f%% at or above the %.0f%% gate\n",
			g.FittingOverheadPct, g.MaxFittingOverheadPct)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench: keys gates PASS (resident %.2fx, overhead %.1f%%, key traffic %.2fx, bit-identical)\n",
		g.ResidentReductionX, g.FittingOverheadPct, g.KeyTrafficReductionX)
}
