package main

// The ntt suite measures the cache-blocked fused NTT/INTT kernel rewrite
// against the retained golden oracle, in the two currencies this repo
// tracks:
//
//   - wall-clock ns/op on the host CPU (testing.Benchmark), fused vs
//     reference, at the bootstrap-scale ring degree the extend suite uses
//     (N = 2^13) plus a single-tile size;
//   - measured DRAM traffic: the fused kernel's recorded access stream
//     and the reference schedule's access stream (one read+write sweep
//     per butterfly stage plus the epilogue sweep — exactly what the
//     retained oracle performs) are both replayed through the memtrace
//     cache simulator at a scratchpad-sized capacity, and the ratio of
//     measured bytes is reported.
//
// The traffic ratio is the suite's acceptance gate (≥ 1.5×): the paper's
// §4 accounting is in bytes moved, and on hosts whose last-level cache
// dwarfs a limb the memory-schedule win is invisible in wall-clock time
// (see docs/PERF.md) while remaining real for any memory-bound target.
// Wall-clock speedups are reported alongside, honestly, as measured.
// Results land in BENCH_ntt.json; benchdiff gates the fused ns/op
// trajectory against the committed baseline.

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/mathutil"
	"repro/internal/memtrace"
	"repro/internal/prng"
	"repro/internal/ring"
)

// nttKernelResult is one transform size, fused vs reference wall clock.
type nttKernelResult struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	Passes      int     `json:"passes"`
	NsFused     int64   `json:"ns_fused"`
	NsReference int64   `json:"ns_reference"`
	WallSpeedup float64 `json:"wall_speedup"`
	AllocsFused int64   `json:"allocs_per_op_fused"`
}

// nttTrafficResult is one cache-replay comparison: the reference
// schedule's DRAM bytes vs the blocked kernel's, at the same simulated
// capacity. TrafficSpeedup = BytesReference / BytesBlocked.
type nttTrafficResult struct {
	Name           string  `json:"name"`
	N              int     `json:"n"`
	Passes         int     `json:"passes"`
	CacheBytes     uint64  `json:"cache_bytes"`
	BytesReference uint64  `json:"bytes_reference"`
	BytesBlocked   uint64  `json:"bytes_blocked"`
	TrafficSpeedup float64 `json:"traffic_speedup"`
}

type nttBenchReport struct {
	Meta       runMeta            `json:"meta"`
	GoMaxProcs int                `json:"gomaxprocs"`
	NumCPU     int                `json:"num_cpu"`
	LogN       int                `json:"logN"`
	Tile       int                `json:"ntt_tile"`
	Note       string             `json:"note"`
	Kernels    []nttKernelResult  `json:"kernels"`
	Traffic    []nttTrafficResult `json:"traffic"`
}

// nttTrafficGate is the acceptance bar on the measured traffic ratio at
// the blocked (bootstrap-scale) size.
const nttTrafficGate = 1.5

// nttBenchRing builds a single-modulus ring at the given size with a
// 61-bit NTT prime (the modulus cap the kernels' lazy bound is tightest
// against).
func nttBenchRing(n int) *ring.Ring {
	logN := 0
	for 1<<logN < n {
		logN++
	}
	primes, err := mathutil.GenerateNTTPrimes(61, logN, 1)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	r, err := ring.NewRing(n, primes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	return r
}

// referenceNTTSchedule records the access stream of the retained oracle:
// one full read+write sweep of the limb per butterfly stage (log2 N
// stages) plus the separate exact-reduction epilogue sweep. This is the
// schedule NTTReference/INTTReference perform by construction; recording
// it symbolically keeps the oracles themselves hook-free.
func referenceNTTSchedule(tr *memtrace.Tracer, p []uint64) {
	logN := 0
	for 1<<logN < len(p) {
		logN++
	}
	for stage := 0; stage < logN; stage++ {
		tr.Read(p)
		tr.Write(p)
	}
	tr.Read(p) // epilogue: exact-reduction (or N^{-1}) sweep
	tr.Write(p)
}

func benchNTTSuite(outPath string) {
	const logN = 13
	sizes := []int{ring.NTTTile, 4 * ring.NTTTile} // single-phase and blocked
	// Replay capacity: a 32 KiB scratchpad slice — twice a 16 KiB tile,
	// half the 64 KiB blocked-size limb. The reference's per-stage full
	// sweeps thrash it (every stage re-misses the whole limb) while the
	// blocked kernel's per-phase tiles fit; the single-tile size doubles
	// as the control, where the limb itself fits and both schedules are
	// cache-resident after the compulsory pass.
	geo := memtrace.Geometry{CapacityBytes: 32 << 10}

	var seed [prng.SeedSize]byte
	copy(seed[:], "simfhe bench deterministic seed")
	src := prng.NewSource(seed)

	report := nttBenchReport{
		Meta:       collectMeta(fmt.Sprintf("suite=ntt logN=%d tile=%d", logN, ring.NTTTile)),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		LogN:       logN,
		Tile:       ring.NTTTile,
		Note: "fused = cache-blocked fused-butterfly kernel; reference = retained " +
			"oracle (bit-identical outputs, enforced by tests). traffic_speedup is " +
			"measured DRAM bytes via memtrace cache replay at cache_bytes capacity — " +
			"the gated metric; wall_speedup is host wall clock, compute-bound when " +
			"the host cache holds the working set (see docs/PERF.md)",
	}

	for _, n := range sizes {
		r := nttBenchRing(n)
		s := r.SubRings[0]
		p := r.NewPoly()
		r.SampleUniform(src, p)
		passes := ring.NTTPasses(n)

		for _, dir := range []string{"ntt", "intt"} {
			fused := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if dir == "ntt" {
						s.NTT(p.Coeffs[0])
					} else {
						s.INTT(p.Coeffs[0])
					}
				}
			})
			ref := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if dir == "ntt" {
						s.NTTReference(p.Coeffs[0])
					} else {
						s.INTTReference(p.Coeffs[0])
					}
				}
			})
			res := nttKernelResult{
				Name:        fmt.Sprintf("%s_n%d", dir, n),
				N:           n,
				Passes:      passes,
				NsFused:     fused.NsPerOp(),
				NsReference: ref.NsPerOp(),
				WallSpeedup: float64(ref.NsPerOp()) / float64(fused.NsPerOp()),
				AllocsFused: fused.AllocsPerOp(),
			}
			report.Kernels = append(report.Kernels, res)
			fmt.Fprintf(os.Stderr, "bench: %s fused=%d ns/op reference=%d ns/op (%.2fx wall, %d allocs/op)\n",
				res.Name, res.NsFused, res.NsReference, res.WallSpeedup, res.AllocsFused)
		}

		// Traffic replay: trace the fused kernel's real access stream and
		// the reference schedule, measure both at the same capacity.
		for _, dir := range []string{"ntt", "intt"} {
			blockedTr := memtrace.New()
			r.SetTracer(blockedTr)
			if dir == "ntt" {
				s.NTT(p.Coeffs[0])
			} else {
				s.INTT(p.Coeffs[0])
			}
			r.SetTracer(nil)
			refTr := memtrace.New()
			referenceNTTSchedule(refTr, p.Coeffs[0])

			blocked := memtrace.Measure(blockedTr.Events(), geo, nil).Total()
			refBytes := memtrace.Measure(refTr.Events(), geo, nil).Total()
			res := nttTrafficResult{
				Name:           fmt.Sprintf("%s_traffic_n%d", dir, n),
				N:              n,
				Passes:         passes,
				CacheBytes:     geo.CapacityBytes,
				BytesReference: refBytes,
				BytesBlocked:   blocked,
				TrafficSpeedup: float64(refBytes) / float64(blocked),
			}
			report.Traffic = append(report.Traffic, res)
			fmt.Fprintf(os.Stderr, "bench: %s reference=%d B blocked=%d B (%.2fx traffic)\n",
				res.Name, res.BytesReference, res.BytesBlocked, res.TrafficSpeedup)
		}
	}

	writeBenchJSON(report, outPath)

	// Acceptance gate: the blocked schedule must move ≥ 1.5× fewer bytes
	// than the reference schedule at the blocked (two-pass) size, and the
	// fused kernels must be allocation-free.
	for _, tr := range report.Traffic {
		if tr.Passes > 1 && tr.TrafficSpeedup < nttTrafficGate {
			fmt.Fprintf(os.Stderr, "bench: FAIL — %s traffic speedup %.2fx below the %.1fx gate\n",
				tr.Name, tr.TrafficSpeedup, nttTrafficGate)
			os.Exit(1)
		}
	}
	for _, k := range report.Kernels {
		if k.AllocsFused != 0 {
			fmt.Fprintf(os.Stderr, "bench: FAIL — %s allocates %d objects/op, want 0\n", k.Name, k.AllocsFused)
			os.Exit(1)
		}
	}
}
