// Command fhed is the fault-tolerant multi-tenant FHE evaluation
// daemon, plus its load-generator client.
//
// Server mode (default):
//
//	fhed -addr :8377 -slots 2 -queue 8 -flight flight.json
//
// exposes the tenant/encrypt/eval/rotate/bootstrap API (see
// docs/SERVER.md), drains gracefully on SIGTERM, and writes a flight
// dump on exit. -chaos additionally enables the per-tenant
// fault-injection endpoint — strictly an opt-in for resilience testing.
//
// Load mode:
//
//	fhed -load -out BENCH_fhed.json            # self-hosted target
//	fhed -load -url http://host:8377 -chaos    # external target
//
// ramps offered concurrency against a target server (an in-process one
// when -url is empty), retries backpressure with jittered exponential
// backoff honoring Retry-After, optionally drives fault-inject/detect/
// recover cycles, and writes the measured service profile as
// BENCH_fhed.json for the benchdiff perf-trajectory gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/fherr"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	var (
		load = flag.Bool("load", false, "run the load generator instead of the server")

		// server flags
		addr    = flag.String("addr", "127.0.0.1:8377", "listen address")
		slots   = flag.Int("slots", 2, "concurrent FHE executions")
		queue   = flag.Int("queue", 8, "admission waiting-room capacity")
		dl      = flag.Duration("deadline", 30*time.Second, "default per-request deadline")
		drain   = flag.Duration("drain", 10*time.Second, "graceful-drain budget on SIGTERM")
		tenants = flag.Int("tenants", 16, "max tenants")
		chaos   = flag.Bool("chaos", false, "enable the fault-injection endpoint (testing only)")
		flight  = flag.String("flight", "", "write a flight dump here on drain")

		// load flags
		url    = flag.String("url", "", "target server URL (empty: self-host an in-process server)")
		out    = flag.String("out", "BENCH_fhed.json", "load report output path")
		window = flag.Duration("window", 2*time.Second, "duration of each concurrency window")
		ramp   = flag.String("ramp", "1,2,4,8,16", "comma-separated offered-concurrency ladder")
		repeat = flag.Int("repeat", 8, "rotations chained per request")
		budget = flag.Int64("keybudget", 0, "tenant key-vault byte budget (0 = unlimited)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "", log.Ltime|log.Lmicroseconds)
	var err error
	if *load {
		err = runLoad(loadOpts{
			url: *url, out: *out, window: *window, ramp: *ramp, repeat: *repeat,
			budget: *budget, chaos: *chaos, slots: *slots, queue: *queue, flight: *flight,
		}, logger)
	} else {
		err = runServe(server.Config{
			Addr: *addr, Slots: *slots, Queue: *queue, DefaultDeadline: *dl,
			DrainBudget: *drain, MaxTenants: *tenants, Chaos: *chaos,
			FlightPath: *flight, Log: logger,
		})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fhed:", err)
		os.Exit(fherr.ExitCode(err))
	}
}

func runServe(cfg server.Config) error {
	srv, err := server.New(cfg, obs.NewRecorder())
	if err != nil {
		return err
	}
	stop := srv.WatchSignals()
	defer stop()
	return srv.Serve()
}

type loadOpts struct {
	url, out, ramp, flight string
	window                 time.Duration
	repeat                 int
	budget                 int64
	chaos                  bool
	slots, queue           int
}

func runLoad(o loadOpts, logger *log.Logger) error {
	target := o.url
	if target == "" {
		// Self-hosted target: an in-process server on an ephemeral port,
		// drained (with flight dump) when the run finishes.
		srv, err := server.New(server.Config{
			Addr: "127.0.0.1:0", Slots: o.slots, Queue: o.queue,
			Chaos: o.chaos, FlightPath: o.flight, Log: logger,
		}, obs.NewRecorder())
		if err != nil {
			return err
		}
		go func() { _ = srv.Serve() }()
		defer func() { _ = srv.Shutdown() }()
		target = "http://" + srv.Addr()
		logger.Printf("loadgen: self-hosted fhed on %s (slots=%d queue=%d chaos=%v)",
			srv.Addr(), o.slots, o.queue, o.chaos)
	}

	var rampList []int
	for _, tok := range splitComma(o.ramp) {
		var n int
		if _, err := fmt.Sscanf(tok, "%d", &n); err != nil || n < 1 {
			return fherr.Errorf(fherr.ErrUsage, "fhed: bad -ramp entry %q", tok)
		}
		rampList = append(rampList, n)
	}

	rep, err := server.RunLoad(server.LoadConfig{
		BaseURL: target, Window: o.window, Ramp: rampList, Repeat: o.repeat,
		KeyBudgetBytes: o.budget, Chaos: o.chaos, Log: logger,
	})
	if err != nil {
		return err
	}

	// Stamp provenance the same way the simfhe bench reports do.
	full := struct {
		*server.LoadReport
		Meta loadMeta `json:"meta"`
	}{rep, collectLoadMeta(fmt.Sprintf("window=%v ramp=%s repeat=%d chaos=%v", o.window, o.ramp, o.repeat, o.chaos))}

	data, err := json.MarshalIndent(full, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(o.out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	logger.Printf("loadgen: report written to %s (max sustained %.1f rps, saturation reject rate %.1f%%)",
		o.out, rep.MaxSustainedRPS, rep.Saturation.RejectRate*100)

	// The run doubles as a resilience gate: overload must degrade to
	// fast rejections (never hangs or transport errors), and every
	// injected corruption must be detected and recovered.
	for _, w := range rep.Windows {
		if w.Errors > 0 {
			return fmt.Errorf("fhed: load run saw %d non-backpressure errors at concurrency %d", w.Errors, w.Concurrency)
		}
		if w.Timeouts > 0 {
			return fmt.Errorf("fhed: load run saw %d timeouts at concurrency %d — saturation must shed load as 429s", w.Timeouts, w.Concurrency)
		}
	}
	if ch := rep.Chaos; ch != nil && (ch.Missed > 0 || ch.Recovered < ch.Cycles) {
		return fmt.Errorf("fhed: chaos cycles failed: %d/%d detected, %d/%d recovered", ch.Detected, ch.Cycles, ch.Recovered, ch.Cycles)
	}
	return nil
}

type loadMeta struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Params     string `json:"params"`
}

func collectLoadMeta(params string) loadMeta {
	return loadMeta{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Params:     params,
	}
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
