// Command fhe is a file-based front end to the functional CKKS library:
// generate keys, encrypt a vector of numbers, compute on the ciphertext
// files, and decrypt — a miniature of the cloud workflow the paper's
// introduction describes (the client keeps the secret key; ciphertexts
// and compressed evaluation keys travel to the server).
//
//	fhe keygen  -dir keys [-logn 12] [-levels 5]
//	fhe encrypt -dir keys -out ct.bin  1.5 2.5 3.5 …
//	fhe add     -dir keys -out sum.bin  a.bin b.bin
//	fhe mul     -dir keys -out prod.bin a.bin b.bin
//	fhe rotate  -dir keys -out rot.bin -by 3 a.bin
//	fhe decrypt -dir keys [-slots 8] ct.bin
//	fhe info    ct.bin
//
// A leading -debug-addr ADDR serves net/http/pprof under /debug/pprof
// and the evaluator's ckks.* counters under /metrics (Prometheus text)
// for the duration of the command:
//
//	fhe -debug-addr localhost:6060 mul -dir keys -out prod.bin a.bin b.bin
package main

import (
	"fmt"
	"os"

	"repro/internal/fhecli"
)

func main() {
	if err := fhecli.Run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fhe:", err)
		os.Exit(1)
	}
}
