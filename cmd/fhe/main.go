// Command fhe is a file-based front end to the functional CKKS library:
// generate keys, encrypt a vector of numbers, compute on the ciphertext
// files, and decrypt — a miniature of the cloud workflow the paper's
// introduction describes (the client keeps the secret key; ciphertexts
// and compressed evaluation keys travel to the server).
//
//	fhe keygen  -dir keys [-logn 12] [-levels 5]
//	fhe encrypt -dir keys -out ct.bin  1.5 2.5 3.5 …
//	fhe add     -dir keys -out sum.bin  a.bin b.bin
//	fhe mul     -dir keys -out prod.bin a.bin b.bin
//	fhe rotate  -dir keys -out rot.bin -by 3 a.bin
//	fhe decrypt -dir keys [-slots 8] ct.bin
//	fhe info    ct.bin
//
// A leading -debug-addr ADDR serves net/http/pprof under /debug/pprof,
// the evaluator's ckks.* counters and latency histograms under /metrics
// (Prometheus text) and a liveness report under /healthz for the
// duration of the command:
//
//	fhe -debug-addr localhost:6060 mul -dir keys -out prod.bin a.bin b.bin
//
// A leading -stats prints an end-of-run telemetry table: per-op latency
// percentiles (from the span histograms), kernel and traffic counters,
// and runtime memory gauges:
//
//	fhe -stats mul -dir keys -out prod.bin a.bin b.bin
//
// A leading -chaos runs the fault-injection smoke suite against an
// in-memory pipeline and writes a machine-readable report (default
// CHAOS.json, override with -chaos-out):
//
//	fhe -chaos -chaos-out report.json
//
// Whenever a fault is classified — a recovered panic at an API boundary
// or a chaos-suite injection — the flight recorder dumps its bounded
// window (the last spans, all counters, gauges and histograms) to
// FLIGHT.json (override with a leading -flight-out FILE).
//
// Exit codes: 0 success, 1 generic failure (I/O, missing files),
// 2 usage errors, 3 ciphertext validation failures (level/scale/domain
// mismatches, checksum violations), 4 internal errors (recovered
// panics).
package main

import (
	"fmt"
	"os"

	"repro/internal/fhecli"
	"repro/internal/fherr"
)

func main() {
	err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fhe:", err)
	}
	os.Exit(fherr.ExitCode(err))
}

// run isolates the deferred panic recovery from main's os.Exit, which
// would skip deferred functions.
func run() (err error) {
	defer fherr.RecoverTo(&err)
	return fhecli.Run(os.Args[1:], os.Stdout)
}
