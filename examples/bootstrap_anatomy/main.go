// Bootstrap anatomy: runs a real CKKS bootstrap with the functional
// library at toy parameters (N = 2^10), reporting per-phase wall time and
// the final precision, then shows the same pipeline through the simulator
// at the paper's scale (N = 2^17) with the per-phase cost breakdown and
// the effect of each MAD optimization family.
package main

import (
	"fmt"
	"math/cmplx"
	"math/rand/v2"
	"time"

	"repro/internal/bootstrap"
	"repro/internal/ckks"
	"repro/internal/obs"
	"repro/internal/prng"
	"repro/internal/simfhe"
)

func main() {
	fmt.Println("=== Part 1: a real bootstrap (functional library, N = 2^10) ===")
	functional()
	fmt.Println("\n=== Part 2: the same pipeline at paper scale (simulator, N = 2^17) ===")
	simulated()
}

func functional() {
	logQ := []int{48}
	for i := 0; i < 16; i++ {
		logQ = append(logQ, 40)
	}
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN: 10, LogQ: logQ, LogP: []int{50, 50, 50}, LogScale: 40,
	})
	if err != nil {
		panic(err)
	}
	src, _ := prng.NewRandomSource()
	kg := ckks.NewKeyGenerator(params, src)
	sk := kg.GenSecretKeySparse(16)

	start := time.Now()
	btp, err := bootstrap.NewBootstrapper(params, bootstrap.DefaultParameters(), sk, src, true)
	if err != nil {
		panic(err)
	}
	fmt.Printf("setup (DFT matrices + keys): %v\n", time.Since(start))

	enc := ckks.NewEncoder(params)
	encryptor := ckks.NewSecretKeyEncryptor(params, sk, src)
	dec := ckks.NewDecryptor(params, sk)

	n := params.Slots()
	msg := make([]complex128, n)
	for i := range msg {
		msg[i] = complex(rand.Float64()*2-1, rand.Float64()*2-1)
	}
	ct := encryptor.Encrypt(enc.Encode(msg))
	ct = btp.Evaluator().DropLevel(ct, 0)
	fmt.Printf("input: level %d (exhausted)\n", ct.Level)

	// Record the bootstrap: the recorder captures one span per phase,
	// each carrying the deltas of the evaluator's ckks.* counters.
	rec := obs.NewRecorder()
	btp.SetRecorder(rec)
	start = time.Now()
	out := btp.Bootstrap(ct)
	fmt.Printf("bootstrap: %v -> level %d\n", time.Since(start), out.Level)

	snap := rec.Snapshot()
	fmt.Printf("\n%-24s %12s %8s %8s %10s %8s\n", "phase", "wall time", "% total", "NTTs", "keyswitch", "rotates")
	total := snap.SpansNamed("bootstrap.Bootstrap")[0]
	for _, name := range []string{
		"bootstrap.ModRaise", "bootstrap.CoeffToSlot", "bootstrap.EvalMod", "bootstrap.SlotToCoeff",
	} {
		sp := snap.SpansNamed(name)[0]
		fmt.Printf("%-24s %12v %7.1f%% %8d %10d %8d\n",
			name, sp.Dur.Round(time.Millisecond), 100*float64(sp.Dur)/float64(total.Dur),
			sp.Counters["ckks.ntt"], sp.Counters["ckks.keyswitch"], sp.Counters["ckks.rotate"])
	}
	fmt.Printf("%-24s %12v %7.1f%% %8d %10d %8d\n",
		"total", total.Dur.Round(time.Millisecond), 100.0,
		total.Counters["ckks.ntt"], total.Counters["ckks.keyswitch"], total.Counters["ckks.rotate"])

	got := enc.Decode(dec.DecryptToPlaintext(out))
	worst := 0.0
	for i := range msg {
		if d := cmplx.Abs(got[i] - msg[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("max slot error after refresh: %.3g\n", worst)
	if worst > 5e-4 {
		panic("bootstrap_anatomy: precision regression")
	}
}

func simulated() {
	for _, cfg := range []struct {
		name string
		opts simfhe.OptSet
	}{
		{"no optimizations", simfhe.NoOpts()},
		{"caching (§3.1)", simfhe.CachingOpts()},
		{"caching + algorithmic (§3.2)", simfhe.AllOpts()},
	} {
		ctx := simfhe.NewCtx(simfhe.Optimal(), simfhe.MB(32), cfg.opts)
		bd := ctx.Bootstrap()
		fmt.Printf("\n%s:\n", cfg.name)
		for _, ph := range []struct {
			name string
			c    simfhe.Cost
		}{
			{"ModRaise", bd.ModRaise},
			{"CoeffToSlot", bd.CoeffToSlot},
			{"EvalMod", bd.EvalMod},
			{"SlotToCoeff", bd.SlotToCoeff},
			{"TOTAL", bd.Total()},
		} {
			fmt.Printf("   %-12s %9.2f Gops %9.2f GB   AI %5.2f\n", ph.name, ph.c.GOps(), ph.c.GB(), ph.c.AI())
		}
	}
}
