// LR training: the paper's headline application (Figure 6 a–e), shown two
// ways.
//
//  1. A miniature encrypted logistic-regression training run with the
//     functional CKKS library on synthetic data — a working instance of
//     the HELR algorithm's inner loop (inner products by rotate-and-sum,
//     a polynomial sigmoid, and a gradient step, all under encryption).
//  2. The full HELR workload pushed through the SimFHE model on each
//     hardware design, with and without the MAD optimizations.
package main

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/ckks"
	"repro/internal/prng"
	"repro/internal/simfhe"
	"repro/internal/simfhe/apps"
	"repro/internal/simfhe/design"
)

func main() {
	fmt.Println("=== Part 1: functional mini-LR on encrypted data ===")
	functionalLR()
	fmt.Println("\n=== Part 2: full HELR workload through the simulator ===")
	simulatedLR()
}

// functionalLR trains w for a 1D logistic model on encrypted data: each
// slot holds one training example; one gradient-descent step per level.
func functionalLR() {
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     11,
		LogQ:     []int{50, 40, 40, 40, 40, 40, 40, 40, 40},
		LogP:     []int{50, 50},
		LogScale: 40,
	})
	if err != nil {
		panic(err)
	}
	src, _ := prng.NewRandomSource()
	kg := ckks.NewKeyGenerator(params, src)
	sk := kg.GenSecretKey()
	rlk := kg.GenRelinearizationKey(sk, true)
	enc := ckks.NewEncoder(params)
	encryptor := ckks.NewSecretKeyEncryptor(params, sk, src)
	dec := ckks.NewDecryptor(params, sk)
	gks := kg.GenRotationKeys(ckks.InnerSumRotations(params.Slots()), sk, true)
	eval := ckks.NewEvaluator(params, &ckks.EvaluationKeySet{Rlk: rlk, Galois: gks})

	// Synthetic data: y ≈ sigmoid(2.5·x); one example per slot.
	n := params.Slots()
	xs := make([]complex128, n)
	ys := make([]complex128, n)
	trueW := 2.5
	for i := range xs {
		x := rand.Float64()*2 - 1
		p := 1 / (1 + math.Exp(-trueW*x))
		label := 0.0
		if rand.Float64() < p {
			label = 1
		}
		xs[i] = complex(x, 0)
		ys[i] = complex(label, 0)
	}
	ctX := encryptor.Encrypt(enc.Encode(xs))

	// Plain-side reference weight and the encrypted weight (broadcast to
	// all slots so slot-wise ops act like scalar ops).
	w := 0.0
	ctW := encryptor.Encrypt(enc.Encode(constVec(n, w)))

	lr := 4.0
	steps := 2
	for s := 0; s < steps; s++ {
		// z = w ⊙ x — the HELR forward pass.
		ctZ := eval.Mul(ctW, eval.DropLevel(ctX, ctW.Level))
		// σ(z) via the HELR degree-7 polynomial (≈6 levels).
		ctSig := eval.EvalPolynomial(ctZ, ckks.SigmoidCoeffs())
		// grad_i = (σ(z) − y_i) ⊙ x_i, then the slot mean by the same
		// rotate-and-sum ladder HELR uses for Xᵀ·e.
		ctY := enc.EncodeAtLevel(ys, ctSig.Scale, ctSig.Level)
		ctErr := eval.SubPlain(ctSig, ctY)
		ctGrad := eval.Mul(ctErr, eval.DropLevel(ctX, ctErr.Level))
		ctGradMean := eval.InnerSum(ctGrad, n)

		mean := real(enc.Decode(dec.DecryptToPlaintext(ctGradMean))[0]) / float64(n)
		w -= lr * mean
		ctW = encryptor.Encrypt(enc.Encode(constVec(n, w))) // re-encrypt ("bootstrap" stand-in)
		fmt.Printf("  step %d: encrypted-gradient mean %+.4f, w = %+.4f (target %.1f)\n", s+1, mean, w, trueW)
	}
	if w <= 0 {
		panic("lr_training: weight did not move toward the target")
	}
}

func constVec(n int, v float64) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(v, 0)
	}
	return out
}

// simulatedLR runs the full HELR schedule through SimFHE on each design.
func simulatedLR() {
	w := apps.HELR()
	fmt.Printf("workload: %s (%d iterations, %d levels each)\n", w.Name, w.Units, w.LevelsUsed)
	for _, d := range design.All() {
		orig := apps.Run(w, d, simfhe.Baseline(), simfhe.CachingOpts())
		mad := apps.Run(w, d.WithMemory(32), simfhe.Optimal(), simfhe.AllOpts())
		fmt.Printf("  %-18s original %8.3f s (%2d bootstraps)  +MAD@32MB %8.3f s (%2d bootstraps)  -> %.1fx\n",
			d.Name, orig.RuntimeS, orig.Bootstraps, mad.RuntimeS, mad.Bootstraps, orig.RuntimeS/mad.RuntimeS)
	}
}
