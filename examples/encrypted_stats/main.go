// Encrypted statistics: compute the mean and variance of a private data
// vector entirely under encryption — the kind of "complex computations on
// encrypted user data" the paper's introduction motivates — then estimate
// what the same pipeline costs at production scale with the simulator's
// schedule interpreter.
package main

import (
	"fmt"
	"math"
	"math/rand/v2"
	"strings"

	"repro/internal/ckks"
	"repro/internal/prng"
	"repro/internal/simfhe"
)

func main() {
	fmt.Println("=== mean and variance under encryption ===")
	functional()
	fmt.Println("\n=== the same pipeline at N = 2^17 through SimFHE ===")
	simulated()
}

func functional() {
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     11,
		LogQ:     []int{50, 40, 40, 40, 40},
		LogP:     []int{50, 50},
		LogScale: 40,
	})
	if err != nil {
		panic(err)
	}
	src, _ := prng.NewRandomSource()
	kg := ckks.NewKeyGenerator(params, src)
	sk := kg.GenSecretKey()
	rlk := kg.GenRelinearizationKey(sk, true)

	const batch = 256 // data points, packed one per slot
	gks := kg.GenRotationKeys(ckks.InnerSumRotations(batch), sk, true)
	ev := ckks.NewEvaluator(params, &ckks.EvaluationKeySet{Rlk: rlk, Galois: gks})
	enc := ckks.NewEncoder(params)
	encryptor := ckks.NewSecretKeyEncryptor(params, sk, src)
	dec := ckks.NewDecryptor(params, sk)

	// Private data: noisy measurements around 0.7.
	data := make([]complex128, batch)
	var plainSum, plainSumSq float64
	for i := range data {
		v := 0.7 + rand.NormFloat64()*0.1
		data[i] = complex(v, 0)
		plainSum += v
		plainSumSq += v * v
	}
	plainMean := plainSum / batch
	plainVar := plainSumSq/batch - plainMean*plainMean

	ct := encryptor.Encrypt(enc.Encode(data))

	// mean = InnerSum(x)/n  (slot 0)
	ctMean := ev.Average(ct, batch)
	// E[x²] = InnerSum(x²)/n (slot 0)
	ctSq := ev.Rescale(ev.Square(ct))
	ctMeanSq := ev.Average(ctSq, batch)
	// Var = E[x²] − mean²: square the mean (one more level), align the
	// scales exactly, and subtract.
	ctMean2 := ev.Rescale(ev.Square(ev.DropLevel(ctMean, ctMeanSq.Level)))
	aligned := ev.MatchScaleLevel(ctMeanSq, ctMean2.Level, ctMean2.Scale)
	ctVar := ev.Sub(aligned, ctMean2)

	gotMean := real(enc.Decode(dec.DecryptToPlaintext(ctMean))[0])
	gotVar := real(enc.Decode(dec.DecryptToPlaintext(ctVar))[0])

	fmt.Printf("mean:     encrypted %+.6f   plain %+.6f   (|Δ| = %.2g)\n", gotMean, plainMean, math.Abs(gotMean-plainMean))
	fmt.Printf("variance: encrypted %+.6f   plain %+.6f   (|Δ| = %.2g)\n", gotVar, plainVar, math.Abs(gotVar-plainVar))

	stats := ckks.Precision([]complex128{complex(plainMean, 0), complex(plainVar, 0)},
		[]complex128{complex(gotMean, 0), complex(gotVar, 0)})
	fmt.Printf("precision: %v\n", stats)
	if stats.MaxErr > 1e-3 {
		panic("encrypted_stats: error larger than expected")
	}
}

func simulated() {
	// The same pipeline as a schedule: 2 squarings, 2 rotate-and-sum
	// ladders over 2^16 slots (16 rotations each), scalar ops.
	dsl := `
name: encrypted-statistics
mult x2          # x^2 and mean^2
rotate x32       # two full rotate-and-sum ladders at n = 2^16
ptmult x2        # the two 1/n scalings
add x3
`
	sched, err := simfhe.ParseSchedule(strings.NewReader(dsl))
	if err != nil {
		panic(err)
	}
	for _, cfg := range []struct {
		name string
		opts simfhe.OptSet
	}{
		{"no MAD", simfhe.NoOpts()},
		{"all MAD", simfhe.AllOpts()},
	} {
		ctx := simfhe.NewCtx(simfhe.Optimal(), simfhe.MB(32), cfg.opts)
		res, err := ctx.RunSchedule(sched)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-8s %8.2f Gops %8.2f GB DRAM  (AI %.2f, final level %d)\n",
			cfg.name, res.Total.GOps(), res.Total.GB(), res.Total.AI(), res.FinalLimbs)
	}
}
