// Quickstart: encrypt two vectors, compute (x·y + rotate(x, 3)) under
// encryption with the functional RNS-CKKS library, decrypt, and compare
// against the cleartext computation.
package main

import (
	"fmt"
	"math/cmplx"

	"repro/internal/ckks"
	"repro/internal/prng"
)

func main() {
	// A small (insecure, demo-only) parameter set: N = 2^12, five
	// 40-bit limbs above a 45-bit base, scale Δ = 2^40.
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     12,
		LogQ:     []int{45, 40, 40, 40, 40},
		LogP:     []int{45, 45},
		LogScale: 40,
	})
	if err != nil {
		panic(err)
	}

	src, _ := prng.NewRandomSource()
	kg := ckks.NewKeyGenerator(params, src)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk, true) // compressed switching keys
	rot := kg.GenRotationKeys([]int{3}, sk, true)

	enc := ckks.NewEncoder(params)
	encryptor := ckks.NewEncryptor(params, pk, src)
	dec := ckks.NewDecryptor(params, sk)
	eval := ckks.NewEvaluator(params, &ckks.EvaluationKeySet{Rlk: rlk, Galois: rot})

	n := params.Slots()
	x := make([]complex128, n)
	y := make([]complex128, n)
	for i := range x {
		x[i] = complex(float64(i%7)/7, 0.25)
		y[i] = complex(0.5, float64(i%5)/10)
	}

	ctX := encryptor.Encrypt(enc.Encode(x))
	ctY := encryptor.Encrypt(enc.Encode(y))

	// x·y + rotate(x, 3), all under encryption.
	prod := eval.Mul(ctX, ctY)
	rotated := eval.Rotate(ctX, 3)
	// Align the rotation to the product's level and exact scale.
	rotated = eval.MatchScaleLevel(rotated, prod.Level, prod.Scale)
	result := eval.Add(prod, rotated)

	got := enc.Decode(dec.DecryptToPlaintext(result))

	worst := 0.0
	for i := 0; i < n; i++ {
		want := x[i]*y[i] + x[(i+3)%n]
		if d := cmplx.Abs(got[i] - want); d > worst {
			worst = d
		}
	}
	fmt.Printf("slots: %d, ciphertext level after computation: %d\n", n, result.Level)
	fmt.Printf("first slots: got %.4f, want %.4f\n", got[0], x[0]*y[0]+x[3])
	fmt.Printf("max slot error: %.3g\n", worst)
	if worst > 1e-3 {
		panic("quickstart: error larger than expected")
	}
	fmt.Println("ok")
}
