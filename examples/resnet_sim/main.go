// ResNet-20 inference through the simulator (Figure 6 f–h): per-design
// comparison of the original configuration against the MAD-augmented one
// at several on-chip memory sizes, with a per-phase cost breakdown for
// one configuration.
package main

import (
	"fmt"
	"sort"

	"repro/internal/simfhe"
	"repro/internal/simfhe/apps"
	"repro/internal/simfhe/design"
)

func main() {
	w := apps.ResNet20()
	fmt.Printf("workload: %s — %d layers, %d rotations + %d plaintext mults + %d Mults per layer\n\n",
		w.Name, w.Units, w.Rotates, w.PtMults, w.Mults)

	data := apps.Figure6ResNet()
	names := make([]string, 0, len(data))
	for name := range data {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("%s:\n", name)
		for _, pt := range data[name] {
			tag := ""
			if pt.Published {
				tag = "  (published)"
			}
			fmt.Printf("   %-34s %9.3f s%s\n", pt.Label, pt.RuntimeS, tag)
		}
	}

	// Breakdown: where does the time go for BTS+MAD at 32 MB?
	fmt.Println("\nBTS+MAD@32MB detail:")
	r := apps.Run(w, design.BTS.WithMemory(32), simfhe.Optimal(), simfhe.AllOpts())
	fmt.Printf("   bootstraps: %d\n", r.Bootstraps)
	fmt.Printf("   total compute: %.1f Gops, total DRAM: %.1f GB (AI %.2f)\n",
		r.Cost.GOps(), r.Cost.GB(), r.Cost.AI())
	d := design.BTS.WithMemory(32)
	fmt.Printf("   compute-bound: %v (compute %.3fs vs memory %.3fs)\n",
		d.ComputeBound(r.Cost), d.ComputeSeconds(r.Cost), d.MemorySeconds(r.Cost))
}
