// Parameter search (Table 5): sweep the secure CKKS parameter space for a
// given on-chip memory budget and print the throughput frontier, the way
// §4.1 describes SimFHE being used for design-space exploration.
package main

import (
	"flag"
	"fmt"

	"repro/internal/simfhe"
	"repro/internal/simfhe/design"
	"repro/internal/simfhe/search"
)

func main() {
	mb := flag.Int("mb", 32, "on-chip memory budget (MB)")
	bw := flag.Float64("bw", 1000, "memory bandwidth (GB/s)")
	top := flag.Int("top", 10, "how many candidates to print")
	flag.Parse()

	d := design.Design{
		Name:          fmt.Sprintf("custom-%dMB", *mb),
		Multipliers:   20480,
		OnChipMB:      *mb,
		BandwidthGBps: *bw,
		FreqGHz:       1,
	}
	fmt.Printf("searching: %d MB on-chip, %.0f GB/s, all MAD optimizations\n\n", *mb, *bw)

	cands := search.Run(search.Space{}, d, simfhe.AllOpts())
	fmt.Printf("%d secure candidates; top %d by bootstrapping throughput (Eq. 3):\n", len(cands), *top)
	fmt.Printf("%4s %3s %5s %8s %6s %10s %10s\n", "q", "L", "dnum", "fftIter", "logQ1", "runtime", "throughput")
	for i, c := range cands {
		if i >= *top {
			break
		}
		fmt.Printf("%4d %3d %5d %8d %6d %8.1fms %10.0f\n",
			c.Params.LogQ, c.Params.L, c.Params.Dnum, c.Params.FFTIter,
			c.LogQ1, c.RuntimeMs, c.Throughput)
	}

	// The paper's two Table 5 rows on the same system, for reference.
	fmt.Println("\nreference points:")
	for _, p := range []simfhe.Params{simfhe.Baseline(), simfhe.Optimal()} {
		r := design.RunBootstrap(d, p, simfhe.AllOpts())
		fmt.Printf("   %v  -> runtime %.1f ms, throughput %.0f, logQ1 %d\n",
			p, r.RuntimeMs, r.Throughput, r.LogQ1)
	}
}
