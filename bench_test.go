package repro

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus micro-benchmarks of the functional library's
// kernels. The simulator benchmarks report the paper's metrics (Gops, GB,
// arithmetic intensity, runtime, throughput) as custom benchmark metrics,
// so `go test -bench=. -benchmem` regenerates the evaluation in one run.

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/bootstrap"
	"repro/internal/ckks"
	"repro/internal/core"
	"repro/internal/mathutil"
	"repro/internal/prng"
	"repro/internal/ring"
	"repro/internal/simfhe"
	"repro/internal/simfhe/apps"
	"repro/internal/simfhe/design"
	"repro/internal/simfhe/search"
)

// --- Table 4: primitive-operation costs and arithmetic intensity ---

func BenchmarkTable4(b *testing.B) {
	for _, row := range core.Table4() {
		b.Run(row.Name, func(b *testing.B) {
			var c simfhe.Cost
			for i := 0; i < b.N; i++ {
				ctx := simfhe.NewCtx(simfhe.Baseline(), simfhe.MB(2), simfhe.NoOpts())
				c = ctx.Mult(ctx.P.L) // representative re-evaluation cost
			}
			_ = c
			b.ReportMetric(row.Cost.GOps(), "Gops")
			b.ReportMetric(row.Cost.GB(), "GB")
			b.ReportMetric(row.Cost.AI(), "ops/byte")
		})
	}
}

// --- Figure 2: cumulative caching optimizations ---

func BenchmarkFig2(b *testing.B) {
	pts := core.Figure2()
	base := pts[0].Cost
	for _, pt := range pts {
		b.Run(pt.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = core.Figure2()
			}
			b.ReportMetric(pt.Cost.GB(), "GB")
			b.ReportMetric(100*(1-float64(pt.Cost.Bytes())/float64(base.Bytes())), "%DRAM-saved")
			b.ReportMetric(pt.Cost.AI(), "ops/byte")
		})
	}
}

// --- Figure 3: cumulative algorithmic optimizations ---

func BenchmarkFig3(b *testing.B) {
	pts := core.Figure3()
	base := pts[0].Cost
	for _, pt := range pts {
		b.Run(pt.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = core.Figure3()
			}
			b.ReportMetric(pt.Cost.GOps(), "Gops")
			b.ReportMetric(pt.Cost.GB(), "GB")
			b.ReportMetric(100*(1-float64(pt.Cost.Ops())/float64(base.Ops())), "%ops-saved")
			b.ReportMetric(pt.Cost.AI(), "ops/byte")
		})
	}
}

// --- Table 5: the brute-force parameter search itself ---

func BenchmarkTable5Search(b *testing.B) {
	space := search.Space{LogQMin: 45, LogQMax: 58, DnumMax: 4, FFTIters: []int{3, 4, 5, 6}}
	var best search.Candidate
	for i := 0; i < b.N; i++ {
		best, _ = search.Best(space, search.ReferenceDesign(), simfhe.AllOpts())
	}
	b.ReportMetric(best.Throughput, "throughput")
	b.ReportMetric(float64(best.Params.LogQ), "q")
	b.ReportMetric(float64(best.Params.L), "L")
	b.ReportMetric(float64(best.Params.Dnum), "dnum")
	b.ReportMetric(float64(best.Params.FFTIter), "fftIter")
}

// --- Table 6: bootstrapping throughput per design ---

func BenchmarkTable6(b *testing.B) {
	for _, row := range core.Table6() {
		b.Run(row.Original.Name, func(b *testing.B) {
			var r design.BootstrapResult
			for i := 0; i < b.N; i++ {
				r = design.RunBootstrap(row.Original.WithMemory(32), simfhe.Optimal(), simfhe.AllOpts())
			}
			b.ReportMetric(row.OrigTput, "orig-tput")
			b.ReportMetric(r.Throughput, "MAD-tput")
			b.ReportMetric(r.RuntimeMs, "MAD-ms")
			b.ReportMetric(row.Normalized, "normalized")
		})
	}
}

// --- Figure 6: application comparisons ---

func BenchmarkFig6LR(b *testing.B) {
	w := apps.HELR()
	for _, d := range design.All() {
		b.Run(d.Name, func(b *testing.B) {
			var orig, mad apps.Result
			for i := 0; i < b.N; i++ {
				orig = apps.Run(w, d, simfhe.Baseline(), simfhe.CachingOpts())
				mad = apps.Run(w, d.WithMemory(32), simfhe.Optimal(), simfhe.AllOpts())
			}
			b.ReportMetric(orig.RuntimeS, "orig-s")
			b.ReportMetric(mad.RuntimeS, "MAD32-s")
			b.ReportMetric(orig.RuntimeS/mad.RuntimeS, "speedup")
		})
	}
}

func BenchmarkFig6ResNet(b *testing.B) {
	w := apps.ResNet20()
	for _, d := range []design.Design{design.BTS, design.ARK, design.CraterLake} {
		b.Run(d.Name, func(b *testing.B) {
			var orig, mad apps.Result
			for i := 0; i < b.N; i++ {
				orig = apps.Run(w, d, simfhe.Baseline(), simfhe.CachingOpts())
				mad = apps.Run(w, d.WithMemory(32), simfhe.Optimal(), simfhe.AllOpts())
			}
			b.ReportMetric(orig.RuntimeS, "orig-s")
			b.ReportMetric(mad.RuntimeS, "MAD32-s")
			b.ReportMetric(orig.RuntimeS/mad.RuntimeS, "speedup")
		})
	}
}

// --- Ablation: each MAD optimization in isolation (DESIGN.md §ablations) ---

func BenchmarkAblationSingleOpt(b *testing.B) {
	p := simfhe.Optimal()
	singles := []struct {
		name string
		opts simfhe.OptSet
	}{
		{"none", simfhe.NoOpts()},
		{"O1-only", simfhe.OptSet{CacheO1: true}},
		{"beta-only", simfhe.OptSet{CacheBeta: true}},
		{"alpha-only", simfhe.OptSet{CacheAlpha: true}},
		{"merge-only", simfhe.OptSet{ModDownMerge: true}},
		{"hoist-only", simfhe.OptSet{ModDownHoist: true}},
		{"keycomp-only", simfhe.OptSet{KeyCompression: true}},
		{"all", simfhe.AllOpts()},
	}
	for _, s := range singles {
		b.Run(s.name, func(b *testing.B) {
			var c simfhe.Cost
			for i := 0; i < b.N; i++ {
				c = simfhe.NewCtx(p, simfhe.MB(64), s.opts).Bootstrap().Total()
			}
			b.ReportMetric(c.GOps(), "Gops")
			b.ReportMetric(c.GB(), "GB")
			b.ReportMetric(c.AI(), "ops/byte")
		})
	}
}

// --- Functional-library micro-benchmarks ---

func benchRing(b *testing.B, logN int) *ring.Ring {
	b.Helper()
	primes, err := mathutil.GenerateNTTPrimes(55, logN, 4)
	if err != nil {
		b.Fatal(err)
	}
	r, err := ring.NewRing(1<<logN, primes)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

func BenchmarkNTT(b *testing.B) {
	for _, logN := range []int{12, 13, 14} {
		b.Run(fmt.Sprintf("N=2^%d", logN), func(b *testing.B) {
			r := benchRing(b, logN)
			var seed [prng.SeedSize]byte
			src := prng.NewSource(seed)
			p := r.NewPoly()
			r.SampleUniform(src, p)
			b.SetBytes(int64(8 * r.N))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.SubRings[0].NTT(p.Coeffs[0])
			}
		})
	}
}

func benchCKKS(b *testing.B) (*ckks.Parameters, *ckks.KeyGenerator, *ckks.SecretKey, *prng.Source) {
	b.Helper()
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     12,
		LogQ:     []int{50, 40, 40, 40, 40, 40},
		LogP:     []int{50, 50},
		LogScale: 40,
	})
	if err != nil {
		b.Fatal(err)
	}
	var seed [prng.SeedSize]byte
	copy(seed[:], "benchmark fixture seed .........")
	src := prng.NewSource(seed)
	kg := ckks.NewKeyGenerator(params, src)
	sk := kg.GenSecretKey()
	return params, kg, sk, src
}

func BenchmarkCKKSMult(b *testing.B) {
	params, kg, sk, src := benchCKKS(b)
	rlk := kg.GenRelinearizationKey(sk, false)
	ev := ckks.NewEvaluator(params, &ckks.EvaluationKeySet{Rlk: rlk})
	enc := ckks.NewEncoder(params)
	encryptor := ckks.NewSecretKeyEncryptor(params, sk, src)
	ct := encryptor.Encrypt(enc.Encode(make([]complex128, params.Slots())))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ev.Mul(ct, ct)
	}
}

func BenchmarkCKKSRotate(b *testing.B) {
	params, kg, sk, src := benchCKKS(b)
	gks := kg.GenRotationKeys([]int{1}, sk, false)
	ev := ckks.NewEvaluator(params, &ckks.EvaluationKeySet{Galois: gks})
	enc := ckks.NewEncoder(params)
	encryptor := ckks.NewSecretKeyEncryptor(params, sk, src)
	ct := encryptor.Encrypt(enc.Encode(make([]complex128, params.Slots())))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ev.Rotate(ct, 1)
	}
}

func BenchmarkCKKSRotateHoisted(b *testing.B) {
	params, kg, sk, src := benchCKKS(b)
	steps := []int{1, 2, 3, 4, 5, 6, 7, 8}
	gks := kg.GenRotationKeys(steps, sk, false)
	ev := ckks.NewEvaluator(params, &ckks.EvaluationKeySet{Galois: gks})
	enc := ckks.NewEncoder(params)
	encryptor := ckks.NewSecretKeyEncryptor(params, sk, src)
	ct := encryptor.Encrypt(enc.Encode(make([]complex128, params.Slots())))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ev.RotateHoisted(ct, steps)
	}
}

func benchBootstrapper(b *testing.B) (*bootstrap.Bootstrapper, *ckks.Ciphertext) {
	b.Helper()
	logQ := []int{48}
	for i := 0; i < 16; i++ {
		logQ = append(logQ, 40)
	}
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN: 10, LogQ: logQ, LogP: []int{50, 50, 50}, LogScale: 40,
	})
	if err != nil {
		b.Fatal(err)
	}
	var seed [prng.SeedSize]byte
	src := prng.NewSource(seed)
	kg := ckks.NewKeyGenerator(params, src)
	sk := kg.GenSecretKeySparse(16)
	btp, err := bootstrap.NewBootstrapper(params, bootstrap.DefaultParameters(), sk, src, true)
	if err != nil {
		b.Fatal(err)
	}
	enc := ckks.NewEncoder(params)
	encryptor := ckks.NewSecretKeyEncryptor(params, sk, src)
	ct := encryptor.Encrypt(enc.Encode(make([]complex128, params.Slots())))
	return btp, btp.Evaluator().DropLevel(ct, 0)
}

func BenchmarkFunctionalBootstrap(b *testing.B) {
	btp, ct := benchBootstrapper(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = btp.Bootstrap(ct)
	}
}

// parallelWorkerCounts is the sweep the parallel benchmarks run: serial,
// two workers, every core (deduplicated, so a single-core machine only
// measures the overhead of the worker pool, not a fake speedup).
func parallelWorkerCounts() []int {
	counts := []int{1, 2, runtime.NumCPU()}
	var out []int
	for _, c := range counts {
		if len(out) == 0 || c > out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out
}

// BenchmarkParallelBootstrap sweeps the worker knob over the full
// bootstrap pipeline — the multi-limb workload where limb-, digit- and
// rotation-level parallelism all engage. Outputs are bit-identical at
// every worker count (asserted by TestBootstrapBitIdenticalAcrossWorkers);
// only the wall clock changes.
func BenchmarkParallelBootstrap(b *testing.B) {
	btp, ct := benchBootstrapper(b)
	for _, w := range parallelWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			btp.SetWorkers(w)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = btp.Bootstrap(ct)
			}
		})
	}
	btp.SetWorkers(1)
}

// BenchmarkParallelRotateHoisted sweeps the worker knob over the hoisted
// rotation fan-out (shared decomposition, per-step key switches) — the
// kernel behind CoeffToSlot/SlotToCoeff diagonal evaluation.
func BenchmarkParallelRotateHoisted(b *testing.B) {
	params, kg, sk, src := benchCKKS(b)
	steps := []int{1, 2, 3, 4, 5, 6, 7, 8}
	gks := kg.GenRotationKeys(steps, sk, false)
	ev := ckks.NewEvaluator(params, &ckks.EvaluationKeySet{Galois: gks})
	enc := ckks.NewEncoder(params)
	encryptor := ckks.NewSecretKeyEncryptor(params, sk, src)
	ct := encryptor.Encrypt(enc.Encode(make([]complex128, params.Slots())))
	for _, w := range parallelWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			ev.SetWorkers(w)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = ev.RotateHoisted(ct, steps)
			}
		})
	}
	ev.SetWorkers(1)
}
